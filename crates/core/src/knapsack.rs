//! The 0/1 **multi-state knapsack** problem and its dynamic-programming
//! solution (paper §5.2).
//!
//! Each candidate item has several *states* (weight/value pairs); at most one
//! state of each item may be put in the knapsack, and the total weight must
//! not exceed the capacity. In the multi-selection algorithm, items are
//! nodes, states are their feasible ASEs, weights are (integer-scaled)
//! apparent error rates and values are saved literals.
//!
//! The solver first filters states heavier than the capacity (dropping items
//! left with no state) and removes *dominated* states (`s1` dominates `s2`
//! iff `w1 ≤ w2` and `v1 ≥ v2`), then fills the classical DP table
//! `m[i][j]` — the best value achievable with the first `i` items within
//! weight `j` — extended to consider every remaining state of item `i`, and
//! finally backtracks to recover the chosen items and states.

use std::fmt;

/// One state of a candidate item: an (integer) weight/value pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KnapsackState {
    /// The state's weight (scaled apparent error rate).
    pub weight: u64,
    /// The state's value (saved literals).
    pub value: u64,
}

/// A candidate item with its alternative states.
#[derive(Clone, Debug, Default)]
pub struct KnapsackItem {
    /// The item's states; may be empty (the item is then never selected).
    pub states: Vec<KnapsackState>,
}

/// The solver's answer: for each input item, the index of the chosen state
/// (into the item's *original* state list) or `None` if the item was not
/// selected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KnapsackSolution {
    /// Per-item chosen state index.
    pub choices: Vec<Option<usize>>,
    /// The total value of the selection.
    pub total_value: u64,
    /// The total weight of the selection.
    pub total_weight: u64,
    /// Size of the DP table that was filled (`num_items × (capacity + 1)`);
    /// reported through telemetry as a work measure.
    pub dp_cells: u64,
}

impl fmt::Display for KnapsackSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {} at weight {} ({} items)",
            self.total_value,
            self.total_weight,
            self.choices.iter().flatten().count()
        )
    }
}

/// Solves the 0/1 multi-state knapsack problem exactly.
///
/// Runs in `O(num_states × capacity)` time and `O(num_items × capacity)`
/// space. With `filter_dominated = false` the dominance-pruning pass is
/// skipped (provided for the ablation benchmark; the answer is identical).
///
/// # Example
///
/// The worked example of the paper's Tables 1 and 2:
///
/// ```
/// use als_core::knapsack::{solve, KnapsackItem, KnapsackState};
///
/// let items = vec![
///     KnapsackItem { states: vec![
///         KnapsackState { weight: 2, value: 1 },
///         KnapsackState { weight: 3, value: 2 },
///     ]},
///     KnapsackItem { states: vec![
///         KnapsackState { weight: 4, value: 2 },
///         KnapsackState { weight: 6, value: 4 },
///     ]},
///     KnapsackItem { states: vec![
///         KnapsackState { weight: 2, value: 1 },
///     ]},
/// ];
/// let solution = solve(&items, 9, true);
/// assert_eq!(solution.total_value, 6);
/// // c1 in state s12 and c2 in state s22.
/// assert_eq!(solution.choices, vec![Some(1), Some(1), None]);
/// ```
pub fn solve(items: &[KnapsackItem], capacity: u64, filter_dominated: bool) -> KnapsackSolution {
    let cap = usize::try_from(capacity).expect("capacity fits in memory"); // lint:allow(panic): size bounded far below the overflow point

    // Filtering: drop states over capacity; optionally drop dominated states.
    // Remember original indices for the backtrack report.
    let mut filtered: Vec<Vec<(usize, KnapsackState)>> = Vec::with_capacity(items.len());
    for item in items {
        let mut states: Vec<(usize, KnapsackState)> = item
            .states
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, s)| s.weight <= capacity)
            .collect();
        if filter_dominated {
            states = remove_dominated(states);
        }
        filtered.push(states);
    }

    // DP table m[i][j], i in 0..=n. Row 0 is all zeros.
    let n = filtered.len();
    let width = cap + 1;
    let mut m = vec![0u64; (n + 1) * width];
    for i in 1..=n {
        for j in 0..width {
            let mut best = m[(i - 1) * width + j]; // skip item i
            for &(_, s) in &filtered[i - 1] {
                let w = s.weight as usize; // lint:allow(as-cast): weight <= capacity, which indexes the DP table
                if w <= j {
                    best = best.max(m[(i - 1) * width + (j - w)] + s.value);
                }
            }
            m[i * width + j] = best;
        }
    }

    // Backtrack from m[n][cap].
    let mut choices = vec![None; n];
    let mut j = cap;
    let mut total_weight = 0u64;
    for i in (1..=n).rev() {
        let here = m[i * width + j];
        if here == m[(i - 1) * width + j] {
            continue; // item not needed (prefer skipping, matching the paper)
        }
        let (orig_idx, s) = filtered[i - 1]
            .iter()
            .find(|(_, s)| {
                let w = s.weight as usize; // lint:allow(as-cast): weight <= capacity, which indexes the DP table
                w <= j && m[(i - 1) * width + (j - w)] + s.value == here
            })
            .expect("DP cell must be explained by some state"); // lint:allow(panic): internal invariant; the message states it
        choices[i - 1] = Some(*orig_idx);
        total_weight += s.weight;
        j -= s.weight as usize; // lint:allow(as-cast): weight <= capacity, which indexes the DP table
    }

    KnapsackSolution {
        total_value: m[n * width + cap],
        total_weight,
        choices,
        dp_cells: (n * width) as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
    }
}

/// Removes dominated states: state `a` dominates `b` iff
/// `a.weight ≤ b.weight` and `a.value ≥ b.value` (keeping one of equal
/// states).
fn remove_dominated(mut states: Vec<(usize, KnapsackState)>) -> Vec<(usize, KnapsackState)> {
    // Sort by weight ascending, value descending; then keep a strictly
    // increasing value frontier.
    states.sort_by(|a, b| a.1.weight.cmp(&b.1.weight).then(b.1.value.cmp(&a.1.value)));
    let mut kept: Vec<(usize, KnapsackState)> = Vec::with_capacity(states.len());
    let mut best_value: Option<u64> = None;
    for (idx, s) in states {
        if best_value.is_none_or(|v| s.value > v) {
            best_value = Some(s.value);
            kept.push((idx, s));
        }
    }
    kept
}

/// The scaling rule of §5.2: error rates (which are real numbers) are turned
/// into integer knapsack weights by multiplying with 10 000 when the
/// threshold is below 1 % and with 1 000 otherwise, then rounding.
///
/// (The paper's text reads "multiplied by 1000. Otherwise ... 1000" — an
/// evident typo; the finer grid for tight thresholds is the stated intent.)
pub fn error_rate_scale(threshold: f64) -> f64 {
    if threshold < 0.01 {
        10_000.0
    } else {
        1_000.0
    }
}

/// Scales a real-valued error rate to an integer knapsack weight.
pub fn scale_weight(error_rate: f64, scale: f64) -> u64 {
    (error_rate * scale).round() as u64 // lint:allow(as-cast): rounded non-negative value <= scale = 1e4
}

/// Exhaustive reference solver for testing (exponential; keep inputs tiny).
#[cfg(test)]
fn brute_force(items: &[KnapsackItem], capacity: u64) -> u64 {
    fn rec(items: &[KnapsackItem], i: usize, cap_left: u64) -> u64 {
        if i == items.len() {
            return 0;
        }
        let mut best = rec(items, i + 1, cap_left);
        for s in &items[i].states {
            if s.weight <= cap_left {
                best = best.max(s.value + rec(items, i + 1, cap_left - s.weight));
            }
        }
        best
    }
    rec(items, 0, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 1.
    fn paper_items() -> Vec<KnapsackItem> {
        vec![
            KnapsackItem {
                states: vec![
                    KnapsackState {
                        weight: 2,
                        value: 1,
                    }, // s11
                    KnapsackState {
                        weight: 3,
                        value: 2,
                    }, // s12
                ],
            },
            KnapsackItem {
                states: vec![
                    KnapsackState {
                        weight: 4,
                        value: 2,
                    }, // s21
                    KnapsackState {
                        weight: 6,
                        value: 4,
                    }, // s22
                ],
            },
            KnapsackItem {
                states: vec![KnapsackState {
                    weight: 2,
                    value: 1,
                }], // s31
            },
        ]
    }

    #[test]
    fn paper_table_2_dp_rows() {
        // Reproduce the DP table of Table 2 row by row.
        let items = paper_items();
        let expect_rows: [[u64; 10]; 3] = [
            [0, 0, 1, 2, 2, 2, 2, 2, 2, 2],
            [0, 0, 1, 2, 2, 2, 4, 4, 5, 6],
            [0, 0, 1, 2, 2, 3, 4, 4, 5, 6],
        ];
        for (upto, row) in expect_rows.iter().enumerate() {
            for (j, &cell) in row.iter().enumerate() {
                let sub = solve(&items[..=upto], j as u64, true);
                assert_eq!(sub.total_value, cell, "m[{}, {}] mismatch", upto + 1, j);
            }
        }
    }

    #[test]
    fn paper_table_2_example_walkthrough() {
        // §5.2: m[2,8] — considering both states of c2: best is 5 via s22.
        let items = paper_items();
        assert_eq!(solve(&items[..2], 8, true).total_value, 5);
        // Final optimum: 6, with c1@s12 and c2@s22.
        let sol = solve(&items, 9, true);
        assert_eq!(sol.total_value, 6);
        assert_eq!(sol.choices, vec![Some(1), Some(1), None]);
        assert_eq!(sol.total_weight, 9);
    }

    #[test]
    fn dominance_filter_preserves_optimum() {
        let items = paper_items();
        for cap in 0..=12 {
            let a = solve(&items, cap, true);
            let b = solve(&items, cap, false);
            assert_eq!(a.total_value, b.total_value, "capacity {cap}");
        }
    }

    #[test]
    fn dominated_states_are_never_chosen() {
        // State (5, 1) is dominated by (2, 3).
        let items = vec![KnapsackItem {
            states: vec![
                KnapsackState {
                    weight: 5,
                    value: 1,
                },
                KnapsackState {
                    weight: 2,
                    value: 3,
                },
            ],
        }];
        let sol = solve(&items, 10, true);
        assert_eq!(sol.choices, vec![Some(1)]);
        assert_eq!(sol.total_value, 3);
    }

    #[test]
    fn zero_capacity_selects_only_weightless() {
        let items = vec![
            KnapsackItem {
                states: vec![KnapsackState {
                    weight: 0,
                    value: 7,
                }],
            },
            KnapsackItem {
                states: vec![KnapsackState {
                    weight: 1,
                    value: 100,
                }],
            },
        ];
        let sol = solve(&items, 0, true);
        assert_eq!(sol.total_value, 7);
        assert_eq!(sol.choices, vec![Some(0), None]);
    }

    #[test]
    fn empty_inputs() {
        let sol = solve(&[], 5, true);
        assert_eq!(sol.total_value, 0);
        assert!(sol.choices.is_empty());
        let sol = solve(&[KnapsackItem { states: vec![] }], 5, true);
        assert_eq!(sol.choices, vec![None]);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut state = 0xfeed_beefu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state
        };
        for round in 0..100 {
            let n_items = 1 + (next() % 5) as usize;
            let items: Vec<KnapsackItem> = (0..n_items)
                .map(|_| KnapsackItem {
                    states: (0..(next() % 4))
                        .map(|_| KnapsackState {
                            weight: next() % 12,
                            value: next() % 9,
                        })
                        .collect(),
                })
                .collect();
            let cap = next() % 25;
            let expect = brute_force(&items, cap);
            for filt in [true, false] {
                let sol = solve(&items, cap, filt);
                assert_eq!(sol.total_value, expect, "round {round} filt {filt}");
                // The reported selection must be consistent and feasible.
                let mut w = 0u64;
                let mut v = 0u64;
                for (item, choice) in items.iter().zip(&sol.choices) {
                    if let Some(c) = choice {
                        w += item.states[*c].weight;
                        v += item.states[*c].value;
                    }
                }
                assert_eq!(v, sol.total_value);
                assert_eq!(w, sol.total_weight);
                assert!(w <= cap);
            }
        }
    }

    #[test]
    fn scaling_rule() {
        assert_eq!(error_rate_scale(0.005), 10_000.0);
        assert_eq!(error_rate_scale(0.01), 1_000.0);
        assert_eq!(error_rate_scale(0.05), 1_000.0);
        assert_eq!(scale_weight(0.0031, 10_000.0), 31);
        assert_eq!(scale_weight(0.03, 1_000.0), 30);
    }
}
