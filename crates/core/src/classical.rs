//! Classical (function-preserving) network simplification — the MIS/SIS
//! "simplify" operation the paper builds on (§3): each node's SOP is
//! re-minimized against its satisfiability and observability don't-cares,
//! computed with the same windowing engine the approximate flow uses. Unlike
//! the ASE-based algorithms, the *global* network function never changes.

use crate::AlsConfig;
use als_dontcare::{DontCareConfig, IncrementalClassifier};
use als_logic::factor::factor_cover;
use als_logic::minimize::minimize_exactish;
use als_logic::TruthTable;
use als_network::{Network, NodeId};

/// Re-minimizes every node against its windowed don't-cares, accepting a
/// change only when the factored-form literal count shrinks. Nodes are
/// visited in topological order, one at a time, so each individual rewrite
/// is sound against the current network (the classical sequential-mfs
/// discipline). Returns the number of literals saved.
///
/// This is the "traditional logic synthesis" counterpart of the approximate
/// flow: run it first to get a well-optimized starting point, exactly as the
/// paper assumes of its benchmark netlists.
pub fn simplify_with_dont_cares(net: &mut Network, config: &DontCareConfig) -> usize {
    let before = net.literal_count();
    let order: Vec<NodeId> = net
        .topo_order()
        .into_iter()
        .filter(|&id| !net.node(id).is_pi())
        .collect();
    // One SAT classifier serves the entire single-threaded pass: the
    // classifier holds no network state, so interleaved rewrites are fine.
    let mut classifier = IncrementalClassifier::new(config.reuse);
    for id in order {
        if !net.is_live(id) {
            continue;
        }
        let node = net.node(id);
        let k = node.fanins().len();
        if k == 0 || k > 12 {
            continue;
        }
        let old_literals = node.literal_count();
        if old_literals == 0 {
            continue;
        }
        let tt = node.cover().to_truth_table();
        let dc = classifier.compute(net, id, config);
        let mut dc_tt = TruthTable::zero(k).expect("fanin count bounded"); // lint:allow(panic): variable count validated by the caller
        for v in 0..(1u64 << k) {
            if dc.is_dont_care(v as usize) {
                // lint:allow(as-cast): local pattern index < 2^MAX_LOCAL_FANINS
                dc_tt.set(v, true);
            }
        }
        if dc_tt.is_zero() {
            continue;
        }
        let minimized = minimize_exactish(&tt, &dc_tt);
        let expr = factor_cover(&minimized);
        if expr.literal_count() < old_literals {
            net.replace_expr(id, expr);
        }
    }
    net.propagate_constants();
    net.sweep();
    before.saturating_sub(net.literal_count())
}

/// A convenient whole-flow optimizer: sweep, cheap eliminate, then
/// don't-care simplification — a small stand-in for a SIS script. Returns
/// the number of literals saved.
pub fn optimize_classical(net: &mut Network, config: &AlsConfig) -> usize {
    let before = net.literal_count();
    net.sweep();
    net.eliminate(-1);
    simplify_with_dont_cares(net, &config.dont_care);
    before.saturating_sub(net.literal_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    #[test]
    fn sdc_enables_node_shrinking() {
        // g = a·b; y = g·a (the literal a in y is redundant given g ⇒ a:
        // the pattern g=1, a=0 is an SDC).
        let mut net = Network::new("t");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g = net.add_node(
            "g",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let y = net.add_node(
            "y",
            vec![g, a],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        net.add_po("y", y);

        let reference: Vec<Vec<bool>> = (0..4u32)
            .map(|m| net.eval(&[m & 1 == 1, m >> 1 & 1 == 1]))
            .collect();
        let saved = simplify_with_dont_cares(&mut net, &DontCareConfig::default());
        assert!(saved >= 1, "the redundant literal must disappear");
        net.check().unwrap();
        for (m, expect) in reference.iter().enumerate() {
            let pis = [m & 1 == 1, m >> 1 & 1 == 1];
            assert_eq!(&net.eval(&pis), expect, "function changed at {m:02b}");
        }
    }

    #[test]
    fn irredundant_network_is_untouched() {
        let mut net = Network::new("x");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let y = net.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(
                2,
                [
                    cube(&[(0, true), (1, false)]),
                    cube(&[(0, false), (1, true)]),
                ],
            ),
        );
        net.add_po("y", y);
        let before = net.literal_count();
        let saved = simplify_with_dont_cares(&mut net, &DontCareConfig::default());
        assert_eq!(saved, 0);
        assert_eq!(net.literal_count(), before);
    }

    #[test]
    fn optimize_classical_preserves_function_on_benchmarks() {
        use als_circuits::ripple_carry_adder;
        let mut net = ripple_carry_adder(4);
        let reference: Vec<Vec<bool>> = (0..256u32)
            .map(|m| net.eval(&(0..8).map(|i| m >> i & 1 == 1).collect::<Vec<_>>()))
            .collect();
        let config = AlsConfig::with_threshold(0.05);
        optimize_classical(&mut net, &config);
        net.check().unwrap();
        for (m, expect) in reference.iter().enumerate() {
            let pis: Vec<bool> = (0..8).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(&net.eval(&pis), expect, "minterm {m}");
        }
    }
}
