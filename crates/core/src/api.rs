//! The one documented entry point: [`approximate`].

use crate::{AlsConfig, AlsContext, AlsError, AlsOutcome};
use als_network::Network;
use als_sim::PatternSet;

/// Which synthesis algorithm [`approximate`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Strategy {
    /// Paper Algorithm 1: one best-scored change per iteration, priced with
    /// don't-care-aware real-error estimates (§3.3).
    Single,
    /// Paper Algorithm 2: a batch of changes per iteration, chosen by the
    /// multi-state knapsack over apparent error rates (Theorem 1).
    Multi,
    /// The SASIMI signal-substitution baseline (DATE'13), as configured in
    /// the paper's comparison.
    Sasimi,
}

/// Approximates `net` under the error-rate constraint in `config`, using the
/// given strategy. This is the library's documented session entry point; the
/// per-algorithm functions ([`single_selection`](crate::single_selection),
/// [`multi_selection`](crate::multi_selection),
/// [`sasimi`](crate::sasimi::sasimi)) are thin wrappers around it.
///
/// The returned network always satisfies the threshold, measured on the
/// run's stimulus against the unmodified input.
///
/// # Errors
///
/// * [`AlsError::InvalidConfig`] when a configuration field violates its
///   documented constraint;
/// * [`AlsError::InvalidNetwork`] when `net` fails its consistency check.
///
/// # Example
///
/// ```
/// use als_core::{approximate, AlsConfig, Strategy};
/// use als_network::blif;
///
/// let net = blif::parse("\
/// .model toy
/// .inputs a b c
/// .outputs y
/// .names a b t
/// 11 1
/// .names t c y
/// 1- 1
/// -1 1
/// .end
/// ")?;
/// let config = AlsConfig::builder().threshold(0.10).build()?;
/// let outcome = approximate(&net, Strategy::Single, &config)?;
/// assert!(outcome.measured_error_rate <= 0.10);
/// assert!(outcome.network.literal_count() <= net.literal_count());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn approximate(
    net: &Network,
    strategy: Strategy,
    config: &AlsConfig,
) -> Result<AlsOutcome, AlsError> {
    config.validate()?;
    net.check()
        .map_err(|e| AlsError::InvalidNetwork(e.to_string()))?;
    let ctx = AlsContext::new(net, config);
    Ok(run(net, strategy, config, ctx))
}

/// Workload-aware variant of [`approximate`]: every error rate (hence the
/// whole synthesis budget) is measured under the supplied stimulus instead
/// of uniform random vectors.
///
/// # Errors
///
/// Same as [`approximate`], plus [`AlsError::InvalidConfig`] when the
/// pattern set drives a different PI count than `net` has.
pub fn approximate_under(
    net: &Network,
    strategy: Strategy,
    config: &AlsConfig,
    patterns: PatternSet,
) -> Result<AlsOutcome, AlsError> {
    config.validate()?;
    net.check()
        .map_err(|e| AlsError::InvalidNetwork(e.to_string()))?;
    if patterns.num_pis() != net.num_pis() {
        return Err(AlsError::InvalidConfig(format!(
            "pattern set drives {} PIs but the network has {}",
            patterns.num_pis(),
            net.num_pis()
        )));
    }
    let ctx = AlsContext::with_patterns(net, patterns);
    Ok(run(net, strategy, config, ctx))
}

/// [`approximate`] with a caller-supplied [`AlsContext`] — the
/// artifact-sharing entry point. The sweep orchestrator and the `als serve`
/// daemon's cross-job cache build one context per (pattern budget, seed) and
/// hand every run a clone, amortizing the golden simulation.
///
/// **Byte-identity contract:** when `ctx` carries the stimulus
/// [`approximate`] would draw itself —
/// `PatternSet::random(net.num_pis(), config.pattern_budget(), config.seed)`
/// — and the config's sampling policy (see [`AlsContext::with_sampling`]),
/// the outcome is byte-identical to a cold [`approximate`] call. The caller
/// owns that contract; a mismatched context simply measures under its own
/// stimulus, like [`approximate_under`].
///
/// # Errors
///
/// Same as [`approximate`].
pub fn approximate_with_context(
    net: &Network,
    strategy: Strategy,
    config: &AlsConfig,
    ctx: AlsContext,
) -> Result<AlsOutcome, AlsError> {
    config.validate()?;
    net.check()
        .map_err(|e| AlsError::InvalidNetwork(e.to_string()))?;
    Ok(run(net, strategy, config, ctx))
}

/// Dispatches a pre-validated run with an already-built context. The sweep
/// orchestrator calls this directly so grid jobs can inject clones of a
/// shared context instead of re-simulating the golden network per point.
pub(crate) fn run(
    net: &Network,
    strategy: Strategy,
    config: &AlsConfig,
    ctx: AlsContext,
) -> AlsOutcome {
    match strategy {
        Strategy::Single => crate::single::single_selection_with_context(net, config, ctx),
        Strategy::Multi => crate::multi::multi_selection_with_context(net, config, ctx),
        Strategy::Sasimi => crate::sasimi::sasimi_with_context(net, config, ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn toy() -> Network {
        let mut net = Network::new("toy");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let y = net.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
        );
        net.add_po("y", y);
        net
    }

    #[test]
    fn rejects_invalid_config() {
        let net = toy();
        let config = AlsConfig {
            threshold: 2.0,
            ..AlsConfig::default()
        };
        for strategy in [Strategy::Single, Strategy::Multi, Strategy::Sasimi] {
            let err = approximate(&net, strategy, &config).unwrap_err();
            assert!(matches!(err, AlsError::InvalidConfig(_)));
        }
    }

    #[test]
    fn all_strategies_produce_sound_outcomes() {
        let net = toy();
        let config = AlsConfig::builder()
            .threshold(0.30)
            .patterns(crate::PatternPolicy::Fixed(256))
            .build()
            .unwrap();
        for strategy in [Strategy::Single, Strategy::Multi, Strategy::Sasimi] {
            let out = approximate(&net, strategy, &config).unwrap();
            assert!(out.measured_error_rate <= 0.30 + 1e-12, "{strategy:?}");
            assert!(out.final_literals <= out.initial_literals, "{strategy:?}");
        }
    }

    #[test]
    fn workload_variant_checks_pi_count() {
        let net = toy();
        let config = AlsConfig::default();
        let wrong = PatternSet::exhaustive(3).unwrap();
        let err = approximate_under(&net, Strategy::Single, &config, wrong).unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(ref m) if m.contains("PI")));
    }
}
