use crate::Ase;
use als_dontcare::DontCares;

/// Everything the selection algorithms need to know about one node's error
/// behaviour: the occurrence probability of each local input pattern (from
/// one global simulation run, §3.2) and the node's don't-care classification
/// (§3.3).
#[derive(Clone, Debug)]
pub struct NodeErrorAnalysis {
    /// `probs[v]` is the probability that the node's fanins take pattern `v`.
    pub pattern_probs: Vec<f64>,
    /// SDC/ODC classification of the patterns.
    pub dont_cares: DontCares,
}

impl NodeErrorAnalysis {
    /// An analysis that uses pattern probabilities only (no don't-cares) —
    /// the configuration used by the multi-selection algorithm's apparent
    /// error rates, and the ablation switch for the single-selection one.
    pub fn without_dont_cares(pattern_probs: Vec<f64>) -> Self {
        let k = pattern_probs.len().trailing_zeros() as usize; // lint:allow(as-cast): u32 bit index fits usize
        NodeErrorAnalysis {
            pattern_probs,
            dont_cares: DontCares::none(k),
        }
    }
}

/// The **apparent error rate** of an ASE (§3.2): the total probability of
/// its erroneous local input patterns.
///
/// # Panics
///
/// Panics if the probability vector is smaller than the ELIP table.
pub fn apparent_error_rate(ase: &Ase, pattern_probs: &[f64]) -> f64 {
    ase.elips
        .minterms()
        .map(|m| pattern_probs[m as usize]) // lint:allow(as-cast): minterm index < 2^MAX_LOCAL_FANINS
        .sum()
}

/// The **estimated real error rate** of an ASE (§3.3): the total probability
/// of its *non-don't-care* ELIPs. This is a close upper bound on the true
/// real error rate, because (a) only a subset of SDCs/ODCs is known, and
/// (b) a non-don't-care ELIP may still fail to propagate under some PI
/// patterns.
///
/// # Panics
///
/// Panics if the probability vector is smaller than the ELIP table.
pub fn estimated_real_error_rate(ase: &Ase, pattern_probs: &[f64], dont_cares: &DontCares) -> f64 {
    ase.elips
        .minterms()
        .filter(|&m| !dont_cares.is_dont_care(m as usize)) // lint:allow(as-cast): minterm index < 2^MAX_LOCAL_FANINS
        .map(|m| pattern_probs[m as usize]) // lint:allow(as-cast): minterm index < 2^MAX_LOCAL_FANINS
        .sum()
}

/// The paper's ASE score: `literals saved / estimated real error rate`,
/// with exact (zero-error) ASEs scoring +∞ so redundancy removal is always
/// preferred.
pub fn score(literals_saved: usize, error_estimate: f64) -> f64 {
    if error_estimate <= 0.0 {
        f64::INFINITY
    } else {
        literals_saved as f64 / error_estimate // lint:allow(as-cast): counts << 2^52, exact in f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_ases;
    use als_logic::Expr;

    fn and2_ases() -> Vec<Ase> {
        // n = a·b over 2 fanins.
        let e = Expr::and(vec![Expr::lit(0, true), Expr::lit(1, true)]);
        generate_ases(&e, 2, 5)
    }

    #[test]
    fn apparent_rate_sums_elip_probs() {
        // Uniform pattern probabilities.
        let probs = vec![0.25; 4];
        for ase in and2_ases() {
            let expect = ase.elips.count_ones() as f64 * 0.25;
            assert!((apparent_error_rate(&ase, &probs) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_example_of_section_3_2() {
        // "Suppose the ELIPs of an ASE are 1001, 1010, and 1011 with
        // probabilities 0.03, 0.01, 0.02 → apparent error rate 0.06."
        use als_logic::TruthTable;
        let mut elips = TruthTable::zero(4).unwrap();
        for m in [0b1001u64, 0b1010, 0b1011] {
            elips.set(m, true);
        }
        let ase = Ase {
            expr: Expr::FALSE,
            kind: crate::AseKind::ConstZero,
            literals_saved: 1,
            elips,
        };
        let mut probs = vec![0.0; 16];
        probs[0b1001] = 0.03;
        probs[0b1010] = 0.01;
        probs[0b1011] = 0.02;
        assert!((apparent_error_rate(&ase, &probs) - 0.06).abs() < 1e-12);
    }

    #[test]
    fn dont_cares_reduce_the_estimate() {
        use als_dontcare::{compute_dont_cares, DontCareConfig};
        use als_logic::{Cover, Cube};
        use als_network::Network;

        // n = a·b feeding y = n + a: patterns with a=1 are ODCs of n.
        let mut net = Network::new("t");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let n = net.add_node(
            "n",
            vec![a, b],
            Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
        );
        let y = net.add_node(
            "y",
            vec![n, a],
            Cover::from_cubes(
                2,
                [
                    Cube::from_literals(&[(0, true)]).unwrap(),
                    Cube::from_literals(&[(1, true)]).unwrap(),
                ],
            ),
        );
        net.add_po("y", y);
        let dc = compute_dont_cares(&net, n, &DontCareConfig::default());
        let probs = vec![0.25; 4];
        for ase in and2_ases() {
            let apparent = apparent_error_rate(&ase, &probs);
            let estimated = estimated_real_error_rate(&ase, &probs, &dc);
            assert!(estimated <= apparent + 1e-12);
        }
        // The const-1 ASE errs on patterns 00,01,10; of these 01 (a=1,b=0)
        // is an ODC, so the estimate drops from 0.75 to 0.50.
        let const1 = and2_ases()
            .into_iter()
            .find(|a| a.kind == crate::AseKind::ConstOne)
            .unwrap();
        assert!((apparent_error_rate(&const1, &probs) - 0.75).abs() < 1e-12);
        assert!((estimated_real_error_rate(&const1, &probs, &dc) - 0.50).abs() < 1e-12);
    }

    #[test]
    fn score_is_infinite_for_free_savings() {
        assert_eq!(score(2, 0.0), f64::INFINITY);
        assert!((score(3, 0.01) - 300.0).abs() < 1e-9);
        assert!(score(1, 0.5) < score(2, 0.5));
    }
}
