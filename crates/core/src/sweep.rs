//! Timing-aware Pareto design-space sweeps.
//!
//! The paper evaluates every circuit at a *grid* of error-rate thresholds
//! (Table 4); this module runs such a grid — threshold × algorithm ×
//! pattern policy — as one orchestrated job and reports the
//! area/delay/error **Pareto frontier** instead of a single operating
//! point:
//!
//! * shared artifacts are computed once per sweep: the golden network's
//!   mapped area and critical-path delay, its static signal-probability
//!   intervals (the abstract interpreter's summary, embedded as record
//!   metadata), and one simulated [`AlsContext`] per distinct pattern
//!   budget (the golden signatures are the expensive part; grid jobs get
//!   clones);
//! * grid points run as parallel jobs over a work-stealing queue with
//!   slot-indexed results, so the frontier is byte-identical for any
//!   worker count (pinned by the `sweep_determinism` test);
//! * each job runs with its telemetry disabled — per-job isolation — while
//!   sweep-level [`Event::SweepStart`]/[`Event::SweepPointDone`] events go
//!   to the caller's sinks in deterministic grid order;
//! * every point is technology-mapped and kept: dominated points are
//!   *tagged*, not dropped, so trajectories stay auditable.
//!
//! The resulting [`SweepRecord`] serializes to a schema-versioned JSON
//! (`SWEEP_<circuit>.json`) that `als-bench`'s compare gate diffs against
//! checked-in baselines: a point whose baseline twin was non-dominated
//! turning dominated by the baseline frontier is a regression.

use crate::api;
use crate::{AlsConfig, AlsContext, AlsError, DelayWeight, PatternPolicy, Strategy};
use als_mapper::{map_network, Library};
use als_network::Network;
use als_telemetry::{Event, Json, Telemetry};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Schema version of [`SweepRecord`] JSON.
///
/// * **v1** — initial: golden `{literals, area, delay}`, absint metadata,
///   points with `(algorithm, threshold, patterns, delay_weight)` identity
///   and `(literals, area, delay, error_rate)` objectives, `dominated`
///   tags.
pub const SWEEP_SCHEMA_VERSION: u64 = 1;

/// The paper's Table-4 threshold grid (also used by `als-bench`).
pub const FULL_THRESHOLDS: [f64; 7] = [0.001, 0.003, 0.005, 0.008, 0.01, 0.03, 0.05];

/// The CI-speed subset of [`FULL_THRESHOLDS`].
pub const QUICK_THRESHOLDS: [f64; 4] = [0.001, 0.005, 0.01, 0.05];

/// The grid a sweep runs: every threshold × strategy × pattern policy.
#[derive(Clone, Debug)]
pub struct SweepGrid {
    /// Error-rate thresholds, one synthesis run per entry (× the other
    /// axes).
    pub thresholds: Vec<f64>,
    /// Selection algorithms to run at each threshold.
    pub strategies: Vec<Strategy>,
    /// Pattern policies to run each (threshold, strategy) pair under.
    pub patterns: Vec<PatternPolicy>,
    /// Delay-aware scoring policy applied to every grid point.
    pub delay_weight: DelayWeight,
    /// Worker threads for grid-point dispatch (`0` = available
    /// parallelism, `1` = run points inline). Results are byte-identical
    /// for every setting.
    pub sweep_workers: usize,
    /// Whether this is the reduced CI grid (recorded for provenance).
    pub quick: bool,
}

impl SweepGrid {
    /// The CI grid: [`QUICK_THRESHOLDS`] × all three algorithms × one
    /// adaptive pattern policy.
    #[must_use]
    pub fn quick() -> Self {
        SweepGrid {
            thresholds: QUICK_THRESHOLDS.to_vec(),
            strategies: vec![Strategy::Single, Strategy::Multi, Strategy::Sasimi],
            patterns: vec![PatternPolicy::Adaptive {
                min: 256,
                max: 2048,
            }],
            delay_weight: DelayWeight::Off,
            sweep_workers: 0,
            quick: true,
        }
    }

    /// The full grid: the paper's Table-4 thresholds × all three
    /// algorithms, at the paper's pattern budget (with adaptive
    /// escalation, which is byte-identical to the fixed budget).
    #[must_use]
    pub fn full() -> Self {
        SweepGrid {
            thresholds: FULL_THRESHOLDS.to_vec(),
            strategies: vec![Strategy::Single, Strategy::Multi, Strategy::Sasimi],
            patterns: vec![PatternPolicy::Adaptive {
                min: 1024,
                max: als_sim::DEFAULT_NUM_PATTERNS,
            }],
            delay_weight: DelayWeight::Off,
            sweep_workers: 0,
            quick: false,
        }
    }

    /// The number of grid points this grid expands to.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.thresholds.len() * self.strategies.len() * self.patterns.len()
    }
}

/// One evaluated grid point: its identity on the grid, its mapped
/// objectives, and its Pareto tag.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// Algorithm name (`single-selection`, `multi-selection`, `sasimi`).
    pub algorithm: String,
    /// The error-rate threshold the point ran under.
    pub threshold: f64,
    /// Pattern-policy spec (`fixed:N` or `adaptive:MIN..MAX`).
    pub patterns: String,
    /// Delay-weight spec (`off` or `scaled:W`).
    pub delay_weight: String,
    /// Final literal count of the approximated network.
    pub literals: u64,
    /// `literals / golden literals`.
    pub literal_ratio: f64,
    /// Mapped cell area of the approximated network.
    pub area: f64,
    /// `area / golden area`.
    pub area_ratio: f64,
    /// Mapped critical-path delay of the approximated network.
    pub delay: f64,
    /// `delay / golden delay`.
    pub delay_ratio: f64,
    /// Measured error rate against the golden network.
    pub error_rate: f64,
    /// Wall-clock synthesis + mapping time of this point.
    pub runtime_s: f64,
    /// Whether another point of the same sweep Pareto-dominates this one
    /// (dominated points are tagged, never dropped).
    pub dominated: bool,
}

impl SweepPoint {
    /// The minimized objective vector: `(literals, delay, error rate)`.
    #[must_use]
    pub fn objectives(&self) -> [f64; 3] {
        [self.literals as f64, self.delay, self.error_rate] // lint:allow(as-cast): literal counts << 2^52, exact in f64
    }

    /// The grid-identity key baselines are matched on.
    #[must_use]
    pub fn key(&self) -> (String, String, String, String) {
        (
            self.algorithm.clone(),
            format!("{:.6}", self.threshold),
            self.patterns.clone(),
            self.delay_weight.clone(),
        )
    }
}

/// Whether objective vector `a` Pareto-dominates `b` (all objectives
/// minimized): `a` is no worse everywhere and strictly better somewhere.
/// Equal vectors do not dominate each other, so dominance is a strict
/// partial order (irreflexive, antisymmetric, transitive).
#[must_use]
pub fn dominates(a: [f64; 3], b: [f64; 3]) -> bool {
    let no_worse = a.iter().zip(&b).all(|(x, y)| x <= y);
    let better = a.iter().zip(&b).any(|(x, y)| x < y);
    no_worse && better
}

/// Tags every point dominated by some other point of the slice; the
/// untagged remainder is the Pareto frontier. O(n²), which is fine for
/// grid-sized inputs.
pub fn mark_frontier(points: &mut [SweepPoint]) {
    let objectives: Vec<[f64; 3]> = points.iter().map(SweepPoint::objectives).collect();
    for (i, point) in points.iter_mut().enumerate() {
        point.dominated = objectives
            .iter()
            .enumerate()
            .any(|(j, other)| j != i && dominates(*other, objectives[i]));
    }
}

/// A whole sweep's result: shared golden baselines, absint metadata, and
/// every grid point with its Pareto tag.
#[derive(Clone, Debug)]
pub struct SweepRecord {
    /// Schema version ([`SWEEP_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Circuit name.
    pub circuit: String,
    /// Git commit the sweep ran at (`unknown` outside a checkout).
    pub git_sha: String,
    /// Stimulus seed shared by every grid point.
    pub seed: u64,
    /// Whether the reduced CI grid ran.
    pub quick: bool,
    /// Configured sweep worker count (provenance only; results are
    /// worker-count-independent).
    pub sweep_workers: usize,
    /// Free-form environment notes.
    pub notes: String,
    /// Golden network literal count.
    pub golden_literals: u64,
    /// Golden mapped cell area.
    pub golden_area: f64,
    /// Golden mapped critical-path delay.
    pub golden_delay: f64,
    /// Abstract-interpretation metadata: nodes forced to worst-case
    /// Fréchet bounds under reconvergent fanout.
    pub absint_frechet_nodes: u64,
    /// Widest static signal-probability interval over the golden POs.
    pub absint_max_po_width: f64,
    /// Every grid point, in grid order.
    pub points: Vec<SweepPoint>,
}

impl SweepRecord {
    /// The points not dominated by any other — the Pareto frontier, in
    /// grid order.
    pub fn frontier(&self) -> impl Iterator<Item = &SweepPoint> {
        self.points.iter().filter(|p| !p.dominated)
    }

    /// Canonical file name: `SWEEP_<circuit>.json`.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("SWEEP_{}.json", self.circuit)
    }

    /// Serializes to pretty-printed JSON (schema-versioned; see
    /// [`SWEEP_SCHEMA_VERSION`]).
    #[must_use]
    pub fn render(&self) -> String {
        let points: Vec<Json> = self
            .points
            .iter()
            .map(|p| {
                let mut obj = Json::object();
                obj.set("algorithm", p.algorithm.as_str())
                    .set("threshold", p.threshold)
                    .set("patterns", p.patterns.as_str())
                    .set("delay_weight", p.delay_weight.as_str())
                    .set("literals", p.literals)
                    .set("literal_ratio", p.literal_ratio)
                    .set("area", p.area)
                    .set("area_ratio", p.area_ratio)
                    .set("delay", p.delay)
                    .set("delay_ratio", p.delay_ratio)
                    .set("error_rate", p.error_rate)
                    .set("runtime_s", p.runtime_s)
                    .set("dominated", p.dominated);
                obj
            })
            .collect();
        let mut golden = Json::object();
        golden
            .set("literals", self.golden_literals)
            .set("area", self.golden_area)
            .set("delay", self.golden_delay);
        let mut absint = Json::object();
        absint
            .set("frechet_nodes", self.absint_frechet_nodes)
            .set("max_po_interval_width", self.absint_max_po_width);
        let mut out = Json::object();
        out.set("schema_version", self.schema_version)
            .set("kind", "sweep")
            .set("circuit", self.circuit.as_str())
            .set("git_sha", self.git_sha.as_str())
            .set("seed", self.seed)
            .set("quick", self.quick)
            .set("sweep_workers", self.sweep_workers)
            .set("notes", self.notes.as_str())
            .set("golden", golden)
            .set("absint", absint)
            .set("points", points);
        out.render_pretty()
    }

    /// Parses a rendered record.
    ///
    /// # Errors
    ///
    /// Returns a description when the text is not valid JSON, is not a
    /// sweep record, or carries a different schema version.
    pub fn parse(text: &str) -> Result<SweepRecord, String> {
        let json = Json::parse(text).map_err(|e| format!("sweep record: {e}"))?;
        let version = json
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("sweep record: missing schema_version")?;
        if version != SWEEP_SCHEMA_VERSION {
            return Err(format!(
                "sweep record: schema version {version} unsupported (expected {SWEEP_SCHEMA_VERSION})"
            ));
        }
        if json.get("kind").and_then(Json::as_str) != Some("sweep") {
            return Err("sweep record: kind is not \"sweep\"".into());
        }
        let str_of = |j: &Json, k: &str| j.get(k).and_then(Json::as_str).unwrap_or("").to_string();
        let f64_of = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        let u64_of = |j: &Json, k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        let points = json
            .get("points")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|p| SweepPoint {
                algorithm: str_of(p, "algorithm"),
                threshold: f64_of(p, "threshold"),
                patterns: str_of(p, "patterns"),
                delay_weight: str_of(p, "delay_weight"),
                literals: u64_of(p, "literals"),
                literal_ratio: f64_of(p, "literal_ratio"),
                area: f64_of(p, "area"),
                area_ratio: f64_of(p, "area_ratio"),
                delay: f64_of(p, "delay"),
                delay_ratio: f64_of(p, "delay_ratio"),
                error_rate: f64_of(p, "error_rate"),
                runtime_s: f64_of(p, "runtime_s"),
                dominated: p.get("dominated").and_then(Json::as_bool).unwrap_or(false),
            })
            .collect();
        let golden = json.get("golden");
        let absint = json.get("absint");
        Ok(SweepRecord {
            schema_version: version,
            circuit: str_of(&json, "circuit"),
            git_sha: str_of(&json, "git_sha"),
            seed: u64_of(&json, "seed"),
            quick: json.get("quick").and_then(Json::as_bool).unwrap_or(false),
            sweep_workers: u64_of(&json, "sweep_workers") as usize, // lint:allow(as-cast): worker counts are tiny
            notes: str_of(&json, "notes"),
            golden_literals: golden.map_or(0, |g| u64_of(g, "literals")),
            golden_area: golden.map_or(0.0, |g| f64_of(g, "area")),
            golden_delay: golden.map_or(0.0, |g| f64_of(g, "delay")),
            absint_frechet_nodes: absint.map_or(0, |a| u64_of(a, "frechet_nodes")),
            absint_max_po_width: absint.map_or(0.0, |a| f64_of(a, "max_po_interval_width")),
            points,
        })
    }

    /// A canonical fingerprint of everything *deterministic* about the
    /// sweep — identity, objectives, and Pareto tags, but not wall-clock
    /// times, notes, or the git commit. Two sweeps of the same circuit and
    /// grid must produce byte-identical fingerprints regardless of worker
    /// count.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        // lint:allow(silent-result): fmt::Write into a String is infallible
        let _ = writeln!(
            s,
            "sweep v{} {} seed {} quick {} golden {} {:.17e} {:.17e}",
            self.schema_version,
            self.circuit,
            self.seed,
            self.quick,
            self.golden_literals,
            self.golden_area,
            self.golden_delay
        );
        for p in &self.points {
            // lint:allow(silent-result): fmt::Write into a String is infallible
            let _ = writeln!(
                s,
                "{} @ {:.17e} {} {} -> lits {} area {:.17e} delay {:.17e} er {:.17e} dominated {}",
                p.algorithm,
                p.threshold,
                p.patterns,
                p.delay_weight,
                p.literals,
                p.area,
                p.delay,
                p.error_rate,
                p.dominated
            );
        }
        s
    }
}

/// The spec string for a pattern policy (`fixed:N` / `adaptive:MIN..MAX`).
#[must_use]
pub fn pattern_spec(policy: PatternPolicy) -> String {
    match policy {
        PatternPolicy::Fixed(n) => format!("fixed:{n}"),
        PatternPolicy::Adaptive { min, max } => format!("adaptive:{min}..{max}"),
    }
}

/// The spec string for a delay-weight policy (`off` / `scaled:W`).
#[must_use]
pub fn delay_weight_spec(policy: DelayWeight) -> String {
    match policy {
        DelayWeight::Off => "off".into(),
        DelayWeight::Scaled(w) => format!("scaled:{w}"),
    }
}

/// The stable algorithm name of a strategy, as used in records and events.
#[must_use]
pub fn strategy_name(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::Single => "single-selection",
        Strategy::Multi => "multi-selection",
        Strategy::Sasimi => "sasimi",
    }
}

/// The commit hash for record provenance: `GITHUB_SHA`, then
/// `git rev-parse --short HEAD`, then `"unknown"`.
#[must_use]
pub fn detect_git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha.chars().take(12).collect();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".into(), |s| s.trim().to_string())
}

/// One grid point's identity before evaluation.
#[derive(Clone, Copy, Debug)]
struct GridPoint {
    threshold: f64,
    strategy: Strategy,
    patterns: PatternPolicy,
}

/// Runs the whole grid against `golden` and returns the tagged record.
///
/// `base` supplies everything the grid does not override (seed, engine
/// threads, don't-care settings, …) plus the sweep-level telemetry sinks;
/// each grid job runs with telemetry disabled (per-job isolation — its
/// internal metrics collector still feeds the job's own outcome).
///
/// # Errors
///
/// * [`AlsError::InvalidConfig`] when the grid is empty or any derived
///   per-point configuration fails validation;
/// * [`AlsError::InvalidNetwork`] when `golden` fails its consistency
///   check.
pub fn run_sweep(
    circuit: &str,
    golden: &Network,
    grid: &SweepGrid,
    base: &AlsConfig,
) -> Result<SweepRecord, AlsError> {
    golden
        .check()
        .map_err(|e| AlsError::InvalidNetwork(e.to_string()))?;
    if grid.num_points() == 0 {
        return Err(AlsError::InvalidConfig(
            "sweep grid is empty (needs ≥ 1 threshold, strategy and pattern policy)".into(),
        ));
    }

    // Expand and validate the whole grid before any work is dispatched.
    let mut points: Vec<GridPoint> = Vec::with_capacity(grid.num_points());
    let mut configs: Vec<AlsConfig> = Vec::with_capacity(grid.num_points());
    for &threshold in &grid.thresholds {
        for &strategy in &grid.strategies {
            for &patterns in &grid.patterns {
                let mut config = base.clone();
                config.threshold = threshold;
                config.patterns = patterns;
                config.delay_weight = grid.delay_weight;
                config.telemetry = Telemetry::disabled();
                config.validate()?;
                points.push(GridPoint {
                    threshold,
                    strategy,
                    patterns,
                });
                configs.push(config);
            }
        }
    }

    // Shared artifacts, computed once: the golden mapping, the abstract
    // interpreter's static summary, and one simulated context per distinct
    // pattern budget.
    let lib = Library::mcnc_like();
    let golden_mapped = map_network(golden, &lib);
    let golden_area = golden_mapped.area();
    let golden_delay = golden_mapped.delay();
    let golden_literals = golden.literal_count() as u64; // lint:allow(as-cast): usize fits u64 on all supported targets
    let probs = als_absint::signal_probabilities(golden, als_absint::Policy::Exact);
    let absint_max_po_width = golden
        .pos()
        .iter()
        .map(|(_, driver)| {
            let i = probs.interval(*driver);
            i.hi - i.lo
        })
        .fold(0.0, f64::max);
    let mut contexts: BTreeMap<usize, AlsContext> = BTreeMap::new();
    for config in &configs {
        contexts
            .entry(config.pattern_budget())
            .or_insert_with(|| AlsContext::new(golden, config));
    }

    let workers = crate::engine::resolve_threads(grid.sweep_workers).min(points.len());
    base.telemetry.emit(|| Event::SweepStart {
        grid_points: points.len() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
        workers: workers as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
    });

    // Evaluate one grid point: synthesize, technology-map, record.
    let run_point = |i: usize| -> SweepPoint {
        let config = &configs[i];
        let point = points[i];
        let ctx = contexts[&config.pattern_budget()].clone();
        // lint:allow(nondeterminism): feeds the point's runtime_s record only, excluded from the fingerprint
        let start = Instant::now();
        let outcome = api::run(golden, point.strategy, config, ctx);
        let mapped = map_network(&outcome.network, &lib);
        let literals = outcome.final_literals as u64; // lint:allow(as-cast): usize fits u64 on all supported targets
        SweepPoint {
            algorithm: strategy_name(point.strategy).to_string(),
            threshold: point.threshold,
            patterns: pattern_spec(point.patterns),
            delay_weight: delay_weight_spec(grid.delay_weight),
            literals,
            literal_ratio: outcome.literal_ratio(),
            area: mapped.area(),
            area_ratio: if golden_area > 0.0 {
                mapped.area() / golden_area
            } else {
                1.0
            },
            delay: mapped.delay(),
            delay_ratio: if golden_delay > 0.0 {
                mapped.delay() / golden_delay
            } else {
                1.0
            },
            error_rate: outcome.measured_error_rate,
            runtime_s: start.elapsed().as_secs_f64(),
            dominated: false,
        }
    };

    // Slot-indexed results: each worker pulls the next index off a shared
    // counter and writes its own slot, so assembly order equals grid order
    // and the record is worker-count-independent.
    let mut results: Vec<Option<SweepPoint>> = Vec::with_capacity(points.len());
    if workers <= 1 {
        results.extend((0..points.len()).map(|i| Some(run_point(i))));
    } else {
        let slots: Vec<Mutex<Option<SweepPoint>>> =
            (0..points.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let point = run_point(i);
                    // Poison-tolerant: a panicked sibling must not wedge us.
                    match slots[i].lock() {
                        Ok(mut slot) => *slot = Some(point),
                        Err(poisoned) => *poisoned.into_inner() = Some(point),
                    }
                });
            }
        });
        results.extend(slots.into_iter().map(|m| match m.into_inner() {
            Ok(slot) => slot,
            Err(poisoned) => poisoned.into_inner(),
        }));
    }
    let mut evaluated: Vec<SweepPoint> = results
        .into_iter()
        .map(|r| r.expect("every grid slot is filled before the scope joins")) // lint:allow(panic): internal invariant; the message states it
        .collect();

    mark_frontier(&mut evaluated);

    // Sweep-level telemetry, emitted after the joins in grid order so the
    // event log is deterministic too.
    for (point, result) in points.iter().zip(&evaluated) {
        let nanos = (result.runtime_s * 1e9) as u64; // lint:allow(as-cast): non-negative duration << u64 range
        base.telemetry.emit(|| Event::SweepPointDone {
            algorithm: strategy_name(point.strategy),
            threshold: point.threshold,
            literals: result.literals,
            mapped_delay: result.delay,
            error_rate: result.error_rate,
            nanos,
        });
    }

    Ok(SweepRecord {
        schema_version: SWEEP_SCHEMA_VERSION,
        circuit: circuit.to_string(),
        git_sha: "unknown".into(),
        seed: base.seed,
        quick: grid.quick,
        sweep_workers: grid.sweep_workers,
        notes: String::new(),
        golden_literals,
        golden_area,
        golden_delay,
        absint_frechet_nodes: probs.frechet_count() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
        absint_max_po_width,
        points: evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(lits: u64, delay: f64, er: f64) -> SweepPoint {
        SweepPoint {
            algorithm: "single-selection".into(),
            threshold: 0.05,
            patterns: "fixed:512".into(),
            delay_weight: "off".into(),
            literals: lits,
            literal_ratio: 1.0,
            area: lits as f64, // lint:allow(as-cast): test helper
            area_ratio: 1.0,
            delay,
            delay_ratio: 1.0,
            error_rate: er,
            runtime_s: 0.0,
            dominated: false,
        }
    }

    #[test]
    fn dominance_needs_strict_improvement_somewhere() {
        let a = [1.0, 1.0, 1.0];
        assert!(!dominates(a, a), "equal vectors must not dominate");
        assert!(dominates([1.0, 1.0, 0.5], a));
        assert!(!dominates([0.5, 2.0, 0.5], a), "trade-offs do not dominate");
    }

    #[test]
    fn frontier_tags_only_dominated_points() {
        let mut pts = vec![
            point(10, 5.0, 0.01),
            point(12, 5.0, 0.01), // dominated by the first
            point(8, 6.0, 0.02),  // trade-off: stays on the frontier
        ];
        mark_frontier(&mut pts);
        assert!(!pts[0].dominated);
        assert!(pts[1].dominated);
        assert!(!pts[2].dominated);
    }

    #[test]
    fn record_json_round_trips() {
        let mut pts = vec![point(10, 5.0, 0.01), point(12, 5.0, 0.01)];
        mark_frontier(&mut pts);
        let record = SweepRecord {
            schema_version: SWEEP_SCHEMA_VERSION,
            circuit: "RCA8".into(),
            git_sha: "abc123".into(),
            seed: 7,
            quick: true,
            sweep_workers: 4,
            notes: "test".into(),
            golden_literals: 40,
            golden_area: 120.0,
            golden_delay: 14.2,
            absint_frechet_nodes: 3,
            absint_max_po_width: 0.5,
            points: pts,
        };
        let parsed = SweepRecord::parse(&record.render()).unwrap();
        assert_eq!(parsed.circuit, record.circuit);
        assert_eq!(parsed.seed, record.seed);
        assert_eq!(parsed.quick, record.quick);
        assert_eq!(parsed.points, record.points);
        assert_eq!(parsed.fingerprint(), record.fingerprint());
        assert_eq!(record.file_name(), "SWEEP_RCA8.json");
    }

    #[test]
    fn parse_rejects_other_schemas_and_kinds() {
        let record = SweepRecord {
            schema_version: SWEEP_SCHEMA_VERSION,
            circuit: "X".into(),
            git_sha: String::new(),
            seed: 1,
            quick: false,
            sweep_workers: 1,
            notes: String::new(),
            golden_literals: 1,
            golden_area: 1.0,
            golden_delay: 1.0,
            absint_frechet_nodes: 0,
            absint_max_po_width: 0.0,
            points: vec![],
        };
        let future = record
            .render()
            .replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(SweepRecord::parse(&future).unwrap_err().contains("schema"));
        let wrong_kind = record
            .render()
            .replace("\"kind\": \"sweep\"", "\"kind\": \"bench\"");
        assert!(SweepRecord::parse(&wrong_kind)
            .unwrap_err()
            .contains("kind"));
        assert!(SweepRecord::parse("not json").is_err());
    }

    #[test]
    fn specs_are_stable() {
        assert_eq!(pattern_spec(PatternPolicy::Fixed(512)), "fixed:512");
        assert_eq!(
            pattern_spec(PatternPolicy::Adaptive { min: 64, max: 512 }),
            "adaptive:64..512"
        );
        assert_eq!(delay_weight_spec(DelayWeight::Off), "off");
        assert_eq!(delay_weight_spec(DelayWeight::Scaled(1.5)), "scaled:1.5");
        assert_eq!(strategy_name(Strategy::Single), "single-selection");
        assert_eq!(strategy_name(Strategy::Multi), "multi-selection");
        assert_eq!(strategy_name(Strategy::Sasimi), "sasimi");
    }

    #[test]
    fn grids_expand_to_the_documented_sizes() {
        assert_eq!(SweepGrid::quick().num_points(), 12);
        assert_eq!(SweepGrid::full().num_points(), 21);
        assert!(SweepGrid::quick().quick);
        assert!(!SweepGrid::full().quick);
    }

    #[test]
    fn empty_grid_is_rejected() {
        let golden = als_circuits::adders::ripple_carry_adder(2);
        let grid = SweepGrid {
            thresholds: vec![],
            ..SweepGrid::quick()
        };
        let err = run_sweep("RCA2", &golden, &grid, &AlsConfig::default()).unwrap_err();
        assert!(matches!(err, AlsError::InvalidConfig(_)));
    }

    #[test]
    fn tiny_sweep_produces_a_tagged_frontier() {
        let golden = als_circuits::adders::ripple_carry_adder(3);
        let grid = SweepGrid {
            thresholds: vec![0.01, 0.05],
            strategies: vec![Strategy::Single, Strategy::Multi],
            patterns: vec![PatternPolicy::Fixed(256)],
            delay_weight: DelayWeight::Off,
            sweep_workers: 1,
            quick: true,
        };
        let config = AlsConfig::builder().seed(3).build().unwrap();
        let record = run_sweep("RCA3", &golden, &grid, &config).unwrap();
        assert_eq!(record.points.len(), 4);
        assert!(record.frontier().count() >= 1);
        assert!(record.golden_literals > 0);
        assert!(record.golden_delay > 0.0);
        // Every point satisfies its own threshold.
        for p in &record.points {
            assert!(p.error_rate <= p.threshold + 1e-12, "{p:?}");
        }
        // Round-trip preserves the fingerprint.
        let parsed = SweepRecord::parse(&record.render()).unwrap();
        assert_eq!(parsed.fingerprint(), record.fingerprint());
    }
}
