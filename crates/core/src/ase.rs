use als_logic::{Expr, TruthTable};

/// How an ASE relates to the original expression.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AseKind {
    /// Literals were deleted but some remain.
    Shrunk,
    /// All literals were deleted and the node becomes constant 0.
    ConstZero,
    /// All literals were deleted and the node becomes constant 1.
    ConstOne,
}

/// An *approximate simplified expression* for a node (paper §3.1): the
/// original factored form with one or more literals deleted, together with
/// the data the selection algorithms need.
#[derive(Clone, Debug)]
pub struct Ase {
    /// The replacement expression (a constant for
    /// [`AseKind::ConstZero`]/[`AseKind::ConstOne`]).
    pub expr: Expr,
    /// The relation to the original expression.
    pub kind: AseKind,
    /// Number of literals removed — the paper's `l`, the value used both in
    /// the score `l/e` and as the knapsack value.
    pub literals_saved: usize,
    /// The erroneous local input patterns (ELIPs, §3.2): the on-set of
    /// `original ⊕ ase` over the node's fanin variables.
    pub elips: TruthTable,
}

impl Ase {
    /// Whether the ASE changes the node function at all. ASEs with no ELIPs
    /// remove redundant literals — free savings the single-selection
    /// algorithm scores as +∞.
    pub fn is_exact(&self) -> bool {
        self.elips.is_zero()
    }
}

/// Generates the candidate ASEs of a node whose factored form is `expr` over
/// `num_fanins` local variables.
///
/// Per the paper (§3.1 and §4):
///
/// * every non-empty subset of literals may be deleted, giving `2^N − 1`
///   shrunk candidates plus the two constants when all `N` are deleted;
/// * when `N ≥ max_enum_literals` (the paper uses 5), only subsets of fewer
///   than `max_enum_literals` literals are enumerated, plus the constant-0
///   and constant-1 ASEs;
/// * candidates that simplify to the same expression are deduplicated,
///   keeping the variant that removes the fewest literals (identical
///   function, identical saving claim would overstate area).
///
/// Nodes that are already constant yield no ASEs.
///
/// # Panics
///
/// Panics if `expr` mentions a variable `>= num_fanins`.
pub fn generate_ases(expr: &Expr, num_fanins: usize, max_enum_literals: usize) -> Vec<Ase> {
    let n = expr.literal_count();
    if n == 0 {
        return Vec::new();
    }
    let orig_tt = expr.to_truth_table(num_fanins);
    let mut out: Vec<Ase> = Vec::new();
    let mut seen: Vec<Expr> = Vec::new();

    let full_enumeration = n < max_enum_literals;
    let max_remove = if full_enumeration {
        n
    } else {
        max_enum_literals - 1
    };

    if n <= 20 {
        // Subset enumeration over literal indices.
        for mask in 1u32..(1u32 << n) {
            let removed = mask.count_ones() as usize; // lint:allow(as-cast): u32 bit index fits usize
            if removed > max_remove {
                continue;
            }
            let indices: Vec<usize> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
            let Some(ase_expr) = expr.remove_literals(&indices) else {
                // All literals gone — handled by the explicit constants below.
                continue;
            };
            if seen.contains(&ase_expr) {
                continue;
            }
            seen.push(ase_expr.clone());
            let tt = ase_expr.to_truth_table(num_fanins);
            out.push(Ase {
                elips: &tt ^ &orig_tt,
                expr: ase_expr,
                kind: AseKind::Shrunk,
                literals_saved: removed,
            });
        }
    }

    // The two all-literals-removed specials (§3.1), always generated.
    let zero_tt = TruthTable::zero(num_fanins).expect("fanin count validated upstream"); // lint:allow(panic): variable count validated by the caller
    out.push(Ase {
        elips: &zero_tt ^ &orig_tt,
        expr: Expr::FALSE,
        kind: AseKind::ConstZero,
        literals_saved: n,
    });
    let one_tt = TruthTable::one(num_fanins).expect("fanin count validated upstream"); // lint:allow(panic): variable count validated by the caller
    out.push(Ase {
        elips: &one_tt ^ &orig_tt,
        expr: Expr::TRUE,
        kind: AseKind::ConstOne,
        literals_saved: n,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (a + b)(c + d)
    fn paper_expr() -> Expr {
        Expr::and(vec![
            Expr::or(vec![Expr::lit(0, true), Expr::lit(1, true)]),
            Expr::or(vec![Expr::lit(2, true), Expr::lit(3, true)]),
        ])
    }

    #[test]
    fn single_literal_removals_match_paper() {
        let ases = generate_ases(&paper_expr(), 4, 5);
        let one_removed: Vec<&Ase> = ases
            .iter()
            .filter(|a| a.literals_saved == 1 && a.kind == AseKind::Shrunk)
            .collect();
        // Paper §3.1: four choices when removing one literal.
        assert_eq!(one_removed.len(), 4);
        let strings: Vec<String> = one_removed.iter().map(|a| a.expr.to_string()).collect();
        for expect in ["x1(x2 + x3)", "x0(x2 + x3)", "(x0 + x1)x3", "(x0 + x1)x2"] {
            assert!(strings.contains(&expect.to_string()), "{strings:?}");
        }
    }

    #[test]
    fn constants_always_present() {
        let ases = generate_ases(&paper_expr(), 4, 5);
        let zeros: Vec<&Ase> = ases
            .iter()
            .filter(|a| a.kind == AseKind::ConstZero)
            .collect();
        let ones: Vec<&Ase> = ases
            .iter()
            .filter(|a| a.kind == AseKind::ConstOne)
            .collect();
        assert_eq!(zeros.len(), 1);
        assert_eq!(ones.len(), 1);
        assert_eq!(zeros[0].literals_saved, 4);
        assert_eq!(ones[0].literals_saved, 4);
        // ELIPs of const-0: the on-set of the function.
        let f = paper_expr().to_truth_table(4);
        assert_eq!(zeros[0].elips, f);
        assert_eq!(ones[0].elips, !&f);
    }

    #[test]
    fn elips_are_xor_of_functions() {
        let e = paper_expr();
        for ase in generate_ases(&e, 4, 5) {
            let expect = &ase.expr.to_truth_table(4) ^ &e.to_truth_table(4);
            assert_eq!(ase.elips, expect);
        }
    }

    #[test]
    fn constant_node_has_no_ases() {
        assert!(generate_ases(&Expr::TRUE, 0, 5).is_empty());
        assert!(generate_ases(&Expr::FALSE, 3, 5).is_empty());
    }

    #[test]
    fn large_expressions_are_capped() {
        // 6 literals: a b c d e f as one AND.
        let e = Expr::and((0..6).map(|v| Expr::lit(v, true)).collect());
        let ases = generate_ases(&e, 6, 5);
        // No shrunk ASE removes 5 or 6 literals...
        assert!(ases
            .iter()
            .filter(|a| a.kind == AseKind::Shrunk)
            .all(|a| a.literals_saved < 5));
        // ...but both constants (removing all 6) exist.
        assert!(ases
            .iter()
            .any(|a| a.kind == AseKind::ConstZero && a.literals_saved == 6));
        assert!(ases
            .iter()
            .any(|a| a.kind == AseKind::ConstOne && a.literals_saved == 6));
    }

    #[test]
    fn duplicates_are_removed() {
        // a + a·b: removing `a·b`'s a or the whole cube can collide; ensure
        // distinct expressions only.
        let e = Expr::or(vec![
            Expr::lit(0, true),
            Expr::and(vec![Expr::lit(0, true), Expr::lit(1, true)]),
        ]);
        let ases = generate_ases(&e, 2, 5);
        let mut exprs: Vec<String> = ases.iter().map(|a| a.expr.to_string()).collect();
        let before = exprs.len();
        exprs.sort();
        exprs.dedup();
        assert_eq!(exprs.len(), before, "duplicate ASEs survived");
    }

    #[test]
    fn exact_ase_detected_for_redundant_literal() {
        // a + a·b ≡ a: removing the redundant cube's literals never changes
        // the function.
        let e = Expr::or(vec![
            Expr::lit(0, true),
            Expr::and(vec![Expr::lit(0, true), Expr::lit(1, true)]),
        ]);
        let ases = generate_ases(&e, 2, 5);
        assert!(
            ases.iter().any(|a| a.is_exact() && a.literals_saved == 2),
            "removing the whole redundant cube is a free saving"
        );
    }

    #[test]
    fn single_literal_node_offers_constants_only() {
        let e = Expr::lit(0, true);
        let ases = generate_ases(&e, 1, 5);
        assert_eq!(ases.len(), 2);
        assert!(ases.iter().all(|a| a.kind != AseKind::Shrunk));
    }
}
