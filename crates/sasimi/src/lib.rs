//! SASIMI — the *substitute-and-simplify* baseline (Venkataramani et al.,
//! DATE'13), as configured in the DAC'16 paper's comparison.
//!
//! The implementation lives in [`als_core::sasimi`] (so that
//! [`als_core::approximate`] can dispatch to it without a dependency
//! cycle); this crate re-exports it under the historical name.
//!
//! # Example
//!
//! ```
//! use als_core::AlsConfig;
//! use als_sasimi::sasimi;
//! use als_circuits::adders::ripple_carry_adder;
//!
//! let net = ripple_carry_adder(4);
//! let outcome = sasimi(&net, &AlsConfig::with_threshold(0.05));
//! assert!(outcome.measured_error_rate <= 0.05);
//! assert!(outcome.final_literals <= outcome.initial_literals);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

pub use als_core::sasimi::sasimi;

#[cfg(test)]
mod tests {
    use super::*;
    use als_core::AlsConfig;
    use als_logic::{Cover, Cube};
    use als_network::Network;
    use als_sim::{error_rate, PatternSet};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    /// Two signals that agree on 7 of 8 patterns: `ab` vs `ab + a'b'c`.
    fn near_duplicate_net() -> Network {
        let mut net = Network::new("near");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let c = net.add_pi("c");
        let g1 = net.add_node(
            "g1",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let g2 = net.add_node(
            "g2",
            vec![a, b, c],
            Cover::from_cubes(
                3,
                [
                    cube(&[(0, true), (1, true)]),
                    cube(&[(0, false), (1, false), (2, true)]),
                ],
            ),
        );
        net.add_po("y1", g1);
        net.add_po("y2", g2);
        net
    }

    #[test]
    fn substitutes_near_identical_signals() {
        let net = near_duplicate_net();
        // g2 differs from g1 on 1/8 of inputs (a'b'c); a 20% budget allows
        // replacing g2 by g1.
        let out = sasimi(&net, &AlsConfig::with_threshold(0.20));
        assert!(out.measured_error_rate <= 0.20 + 1e-12);
        assert!(
            out.final_literals < out.initial_literals,
            "{} -> {}",
            out.initial_literals,
            out.final_literals
        );
        let p = PatternSet::exhaustive(3).unwrap();
        let er = error_rate(&net, &out.network, &p);
        assert!(er <= 0.20, "true error {er}");
    }

    #[test]
    fn tight_budget_blocks_substitution() {
        let net = near_duplicate_net();
        // The only non-trivial substitution costs 12.5% error.
        let out = sasimi(&net, &AlsConfig::with_threshold(0.01));
        assert_eq!(out.final_literals, out.initial_literals);
        assert_eq!(out.measured_error_rate, 0.0);
    }

    #[test]
    fn exact_duplicates_are_free() {
        let mut net = Network::new("dup");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g1 = net.add_node(
            "g1",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let g2 = net.add_node(
            "g2",
            vec![b, a],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        net.add_po("y1", g1);
        net.add_po("y2", g2);
        let out = sasimi(&net, &AlsConfig::with_threshold(0.0));
        assert_eq!(out.measured_error_rate, 0.0);
        assert!(out.final_literals < out.initial_literals);
    }

    #[test]
    fn inverted_substitution_found() {
        // g2 = NOT g1 exactly: substitution with an inverter saves literals.
        let mut net = Network::new("inv");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g1 = net.add_node(
            "g1",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        // g2 = (ab)' as a 2-cube SOP: a' + b'.
        let g2 = net.add_node(
            "g2",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, false)]), cube(&[(1, false)])]),
        );
        net.add_po("y1", g1);
        net.add_po("y2", g2);
        let out = sasimi(&net, &AlsConfig::with_threshold(0.0));
        assert_eq!(out.measured_error_rate, 0.0);
        // g2 (2 literals) becomes one inverter on g1 (1 literal).
        assert!(out.final_literals < out.initial_literals);
    }

    #[test]
    fn respects_threshold_on_arithmetic() {
        use als_circuits::adders::ripple_carry_adder;
        let net = ripple_carry_adder(4);
        let out = sasimi(&net, &AlsConfig::with_threshold(0.05));
        assert!(out.measured_error_rate <= 0.05 + 1e-12);
        let p = PatternSet::exhaustive(8).unwrap();
        let er = error_rate(&net, &out.network, &p);
        assert!(er <= 0.08, "true error {er}");
    }
}
