//! A minimal, dependency-free reimplementation of the subset of the
//! [`criterion`](https://docs.rs/criterion) API this workspace's benches
//! use. The build environment has no network access, so the real crate
//! cannot be fetched.
//!
//! Each `bench_function` warms the closure up, runs a fixed number of timed
//! samples, and prints the per-iteration mean and min — enough to compare
//! configurations (e.g. thread counts) at a glance, with none of criterion's
//! statistics machinery.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (a shim of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Benchmarks one function directly (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.sample_size, f);
        self
    }
}

/// A named benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An identifier with a function name and a parameter display.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An identifier from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.sample_size, f);
        self
    }

    /// Benchmarks one parameterized function within the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.into(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmarked closure; its [`iter`](Bencher::iter) runs and
/// times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warm-up call).
    // The name mirrors the upstream criterion API; it is not an iterator.
    #[allow(clippy::iter_not_returning_iterator)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, excluded from samples
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_benchmark<F>(id: &BenchmarkId, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {:<44} (no samples)", id.label);
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "  {:<44} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        id.label,
        mean,
        min,
        bencher.samples.len()
    );
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("solve", 32);
        assert_eq!(id.label, "solve/32");
        let id: BenchmarkId = "plain".into();
        assert_eq!(id.label, "plain");
    }
}
