//! A minimal, dependency-free reimplementation of the subset of the
//! [`proptest`](https://docs.rs/proptest) API this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this shim keeps every property test compiling and running. It
//! deliberately implements only what the tests need:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`prop_oneof!`];
//! * `any::<T>()` for the primitive integer types and `bool`;
//! * range, tuple and [`collection::vec`] strategies;
//! * [`Strategy::prop_map`] and [`Strategy::prop_recursive`].
//!
//! Values are generated from a deterministic SplitMix64 stream seeded per
//! test name, so failures reproduce across runs. There is **no shrinking**:
//! a failing case reports the case number and panics.

#![forbid(unsafe_code)]
// The integer strategies are macro-generated over every width; a uniform
// `as` cast is the point (wrap-around is the desired arbitrary-int
// behavior), so the lossless-conversion lint does not apply.
#![allow(clippy::cast_lossless)]
#![deny(missing_debug_implementations)]

use std::fmt::Debug;
use std::rc::Rc;

/// Deterministic SplitMix64 generator driving all value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift rejection-free mapping (bias negligible for tests).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs — the case is skipped, not failed.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Result type the generated test bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of one type. Unlike real proptest there is no
/// shrinking, so a strategy is just a cloneable value factory.
pub trait Strategy: Clone {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T + Clone,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `expand` receives a boxed strategy generating
    /// the previous depth level. The `_size`/`_branch` hints of the real API
    /// are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        expand: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            base: self.boxed(),
            expand: Rc::new(move |inner| expand(inner).boxed()),
            depth,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation trait backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    T: Debug,
    F: Fn(S::Value) -> T + Clone,
{
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Strategy produced by [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    expand: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            expand: Rc::clone(&self.expand),
            depth: self.depth,
        }
    }
}

impl<T> Debug for Recursive<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recursive")
            .field("depth", &self.depth)
            .finish_non_exhaustive()
    }
}

impl<T: Debug> Strategy for Recursive<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(u64::from(self.depth) + 1) as u32;
        let mut s = self.base.clone();
        for _ in 0..levels {
            s = (self.expand)(s);
        }
        s.gen_value(rng)
    }
}

/// A strategy always yielding clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (backs [`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<T> Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} variants)", self.0.len())
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].gen_value(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

// Manual impl: `Any<T>` is always cloneable regardless of `T`.
impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)*) = self;
                ($($name.gen_value(rng),)*)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// A length specification: fixed or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Stable per-test seed from the test's name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u8..15, v in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while case < config.cases {
                    $(let $pat = $crate::Strategy::gen_value(&($strat), &mut rng);)*
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => case += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.cases.saturating_mul(16).max(256) {
                                // Matches real proptest's give-up behaviour.
                                panic!(
                                    "property {}: too many prop_assume! rejections",
                                    stringify!($name)
                                );
                            }
                        }
                        Err($crate::TestCaseError::Fail(message)) => {
                            panic!(
                                "property {} failed at case {}: {}",
                                stringify!($name), case, message
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a), stringify!($b), lhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs != rhs, $($fmt)*);
    }};
}

/// Skips the current case when its generated inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Uniform choice among strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u8..17).gen_value(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-5i64..5).gen_value(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 2..6).gen_value(&mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
        }
        let fixed = crate::collection::vec(any::<bool>(), 4usize).gen_value(&mut rng);
        assert_eq!(fixed.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_machinery_works(x in 0u32..100, flag in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(x, x);
            if flag {
                prop_assert_ne!(x + 1, x);
            }
        }
    }

    proptest! {
        #[test]
        fn oneof_and_recursive(v in super::prop_oneof![0u8..4, 10u8..14], m in mapped()) {
            prop_assert!(v < 4 || (10..14).contains(&v));
            prop_assert!(m.is_multiple_of(2));
        }
    }

    fn mapped() -> impl Strategy<Value = u8> {
        (0u8..50).prop_map(|x| x * 2)
    }
}
