use crate::lanes;
use crate::PatternSet;
use als_network::{Network, NodeId};

/// Per-node signatures produced by [`simulate`]: for every live node, the
/// 64-bit words holding the node's value under every pattern.
///
/// Storage is one flat arena-backed buffer (`arena_len × words_per_signal`
/// words, node `id` at offset `id.index() * words_per_signal`) rather than a
/// `Vec<Vec<u64>>`: signatures of topologically adjacent nodes sit next to
/// each other in memory, which is what the incremental resimulation walk
/// ([`IncrementalSim`](crate::IncrementalSim)) streams over. A separate
/// liveness bitmap distinguishes dead arena slots from real signatures.
///
/// **Canonical-tail invariant:** the unused high bits of every stored final
/// word are zero (masked at write time), so two signatures are equal iff
/// their words are equal — plain `==`, no per-read masking or hashing.
#[derive(Clone, Debug)]
pub struct SimResult {
    num_patterns: usize,
    words_per_signal: usize,
    tail_mask: u64,
    /// Flat signature arena; node `id` occupies
    /// `words[id.index() * words_per_signal ..][..words_per_signal]`.
    words: Vec<u64>,
    /// Which arena slots hold a simulated signature (dead slots are
    /// tombstones left by rewrites).
    live: Vec<bool>,
}

impl SimResult {
    /// Number of simulated patterns.
    #[inline]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Number of words per signal.
    #[inline]
    pub fn words_per_signal(&self) -> usize {
        self.words_per_signal
    }

    /// The signature (value words) of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not live at simulation time.
    pub fn node_words(&self, id: NodeId) -> &[u64] {
        assert!(
            self.live.get(id.index()).copied().unwrap_or(false),
            "node {id} was not simulated"
        );
        let base = id.index() * self.words_per_signal;
        &self.words[base..base + self.words_per_signal]
    }

    /// The value of node `id` under pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not simulated or `p` is out of range.
    pub fn node_value(&self, id: NodeId, p: usize) -> bool {
        assert!(p < self.num_patterns, "pattern index out of range");
        self.node_words(id)[p / 64] >> (p % 64) & 1 == 1
    }

    /// How many patterns set node `id` to 1.
    pub fn count_ones(&self, id: NodeId) -> u64 {
        // Tail bits are canonically zero, so a plain popcount is exact.
        lanes::popcount_masked(self.node_words(id), u64::MAX)
    }

    /// The signal probability of node `id` (fraction of patterns at 1).
    pub fn probability(&self, id: NodeId) -> f64 {
        self.count_ones(id) as f64 / self.num_patterns as f64 // lint:allow(as-cast): counts << 2^52, exact in f64
    }

    /// A compact hash of the node's signature (used by the redundancy
    /// pre-process to bucket candidate-identical signals).
    pub fn signature_hash(&self, id: NodeId) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for w in self.node_words(id) {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Whether two nodes have identical signatures over the pattern set.
    pub fn signatures_equal(&self, a: NodeId, b: NodeId) -> bool {
        self.node_words(a) == self.node_words(b)
    }

    /// The number of patterns on which two simulated nodes differ.
    pub fn difference_count(&self, a: NodeId, b: NodeId) -> u64 {
        let mut diff = vec![0u64; self.words_per_signal];
        lanes::xor_or_accumulate(&mut diff, self.node_words(a), self.node_words(b));
        lanes::popcount_masked(&diff, u64::MAX)
    }

    /// Mask selecting the valid bits of the final word.
    #[inline]
    pub fn tail_mask(&self) -> u64 {
        self.tail_mask
    }

    /// The flat signature arena (for [`SimView`]).
    ///
    /// [`SimView`]: crate::SimView
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// The liveness bitmap (for [`SimView`]).
    ///
    /// [`SimView`]: crate::SimView
    #[inline]
    pub(crate) fn live(&self) -> &[bool] {
        &self.live
    }
}

/// Evaluates node `id`'s cover over the fanin signatures stored in the flat
/// arena `words` (stride `wps`), writing the tail-canonical result into
/// `out`. Shared by [`simulate`] and the incremental engine so both compute
/// bit-identical signatures.
pub(crate) fn eval_node_flat(
    net: &Network,
    id: NodeId,
    words: &[u64],
    wps: usize,
    tail_mask: u64,
    out: &mut [u64],
) {
    eval_node_range(net, id, words, wps, tail_mask, 0..wps, out);
}

/// Evaluates node `id`'s cover over the word sub-range `[start, end)` of
/// every fanin signature, writing `end - start` result words into `out`.
///
/// This is the resumable form of [`eval_node_flat`] used by the adaptive
/// sampler: a prefix of each signature can be computed first and the
/// remaining words filled in later, producing exactly the words a full-range
/// evaluation would (each output word depends only on the same-index fanin
/// words). The tail mask is applied iff the range covers the final word
/// (`end == wps`), preserving the canonical-tail invariant.
pub(crate) fn eval_node_range(
    net: &Network,
    id: NodeId,
    words: &[u64],
    wps: usize,
    tail_mask: u64,
    range: std::ops::Range<usize>,
    out: &mut [u64],
) {
    let (start, end) = (range.start, range.end);
    debug_assert!(start <= end && end <= wps);
    debug_assert_eq!(out.len(), end - start);
    out.fill(0);
    let node = net.node(id);
    let mut term = vec![u64::MAX; end - start];
    for cube in node.cover().cubes() {
        term.fill(u64::MAX);
        for (var, phase) in cube.literals() {
            let base = node.fanins()[var].index() * wps;
            lanes::and_phase(&mut term, &words[base + start..base + end], phase);
        }
        lanes::or_accumulate(out, &term);
    }
    if end == wps {
        if let Some(last) = out.last_mut() {
            *last &= tail_mask;
        }
    }
}

/// Simulates the network under the pattern set, producing per-node
/// signatures. One run serves every consumer: error-rate measurement, local
/// pattern statistics and signature-based redundancy detection (§3.2, §6).
///
/// # Panics
///
/// Panics if `patterns.num_pis()` differs from the network's PI count.
pub fn simulate(net: &Network, patterns: &PatternSet) -> SimResult {
    assert_eq!(
        patterns.num_pis(),
        net.num_pis(),
        "pattern set drives a different PI count"
    );
    let wps = patterns.words_per_signal();
    let tail_mask = patterns.tail_mask();
    let arena = net.node_ids().map(NodeId::index).max().map_or(0, |m| m + 1);
    let mut words = vec![0u64; arena * wps];
    let mut live = vec![false; arena];
    for (i, &pi) in net.pis().iter().enumerate() {
        let base = pi.index() * wps;
        words[base..base + wps].copy_from_slice(patterns.pi_words(i));
        if let Some(last) = words[base..base + wps].last_mut() {
            *last &= tail_mask;
        }
        live[pi.index()] = true;
    }
    let mut out = vec![0u64; wps];
    for id in net.topo_order() {
        if net.node(id).is_pi() {
            continue;
        }
        eval_node_flat(net, id, &words, wps, tail_mask, &mut out);
        let base = id.index() * wps;
        words[base..base + wps].copy_from_slice(&out);
        live[id.index()] = true;
    }
    SimResult {
        num_patterns: patterns.num_patterns(),
        words_per_signal: wps,
        tail_mask,
        words,
        live,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    fn xor_net() -> (Network, NodeId) {
        let mut net = Network::new("xor");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let y = net.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(
                2,
                [
                    cube(&[(0, true), (1, false)]),
                    cube(&[(0, false), (1, true)]),
                ],
            ),
        );
        net.add_po("y", y);
        (net, y)
    }

    #[test]
    fn exhaustive_simulation_matches_eval() {
        let (net, y) = xor_net();
        let patterns = PatternSet::exhaustive(2).unwrap();
        let sim = simulate(&net, &patterns);
        for p in 0..4 {
            let pis: Vec<bool> = (0..2).map(|i| patterns.pi_value(i, p)).collect();
            assert_eq!(sim.node_value(y, p), net.eval(&pis)[0], "pattern {p}");
        }
        assert_eq!(sim.count_ones(y), 2);
        assert!((sim.probability(y) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_simulation_matches_eval_spotchecks() {
        let (net, y) = xor_net();
        let patterns = PatternSet::random(2, 256, 42);
        let sim = simulate(&net, &patterns);
        for p in (0..256).step_by(17) {
            let pis: Vec<bool> = (0..2).map(|i| patterns.pi_value(i, p)).collect();
            assert_eq!(sim.node_value(y, p), net.eval(&pis)[0]);
        }
    }

    #[test]
    fn constant_nodes_simulate() {
        let mut net = Network::new("consts");
        let _a = net.add_pi("a");
        let k1 = net.add_constant("k1", true);
        let k0 = net.add_constant("k0", false);
        net.add_po("k1", k1);
        net.add_po("k0", k0);
        let patterns = PatternSet::exhaustive(1).unwrap();
        let sim = simulate(&net, &patterns);
        assert_eq!(sim.count_ones(k1), 2);
        assert_eq!(sim.count_ones(k0), 0);
    }

    #[test]
    fn signature_identity_and_hash() {
        let mut net = Network::new("dup");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g1 = net.add_node(
            "g1",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let g2 = net.add_node(
            "g2",
            vec![b, a],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let g3 = net.add_node("g3", vec![a, b], Cover::from_cubes(2, [cube(&[(0, true)])]));
        net.add_po("g1", g1);
        net.add_po("g2", g2);
        net.add_po("g3", g3);
        let sim = simulate(&net, &PatternSet::exhaustive(2).unwrap());
        assert!(sim.signatures_equal(g1, g2));
        assert_eq!(sim.signature_hash(g1), sim.signature_hash(g2));
        assert!(!sim.signatures_equal(g1, g3));
        assert_eq!(sim.difference_count(g1, g3), 1); // a=1,b=0
    }

    #[test]
    #[should_panic(expected = "different PI count")]
    fn pi_count_mismatch_panics() {
        let (net, _) = xor_net();
        let patterns = PatternSet::exhaustive(3).unwrap();
        let _ = simulate(&net, &patterns);
    }

    /// Regression for the latent tail-mask edge case: pattern counts that
    /// are an exact multiple of 64 and counts that are not must agree on
    /// `count_ones`/`probability`. A constant-1 node must report exactly
    /// `num_patterns` ones — neither more (tail garbage or storage padding
    /// counted) nor fewer — and `a + a'` must partition the pattern set.
    #[test]
    fn tail_mask_is_exact_for_multiple_and_non_multiple_pattern_counts() {
        for n in [1usize, 63, 64, 65, 128] {
            let mut net = Network::new("k");
            let a = net.add_pi("a");
            let k1 = net.add_constant("k1", true);
            // nota = a' exercises the negative-literal path, whose `!word`
            // sets every tail bit before the canonical write-time mask.
            let nota = net.add_node("nota", vec![a], Cover::from_cubes(1, [cube(&[(0, false)])]));
            net.add_po("k1", k1);
            net.add_po("nota", nota);
            let vectors: Vec<u64> = (0..n as u64).map(|i| i & 1).collect(); // lint:allow(as-cast): n <= 128
            let patterns = PatternSet::from_vectors(1, &vectors);
            assert_eq!(patterns.num_patterns(), n, "exact pattern count");
            let sim = simulate(&net, &patterns);
            let n64 = n as u64; // lint:allow(as-cast): n <= 128
            assert_eq!(sim.count_ones(k1), n64, "constant-1 over {n} patterns");
            assert!((sim.probability(k1) - 1.0).abs() < 1e-15, "{n} patterns");
            assert_eq!(
                sim.count_ones(a) + sim.count_ones(nota),
                n64,
                "a + a' must partition {n} patterns"
            );
            assert_eq!(sim.count_ones(a), n64 / 2, "alternating stimulus");
            // The canonical-tail invariant itself: no garbage above tail_mask.
            let last = *sim.node_words(nota).last().unwrap();
            assert_eq!(last & !sim.tail_mask(), 0, "tail garbage at {n}");
        }
    }
}
