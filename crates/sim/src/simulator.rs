use crate::PatternSet;
use als_network::{Network, NodeId};

/// Per-node signatures produced by [`simulate`]: for every live node, the
/// vector of 64-bit words holding the node's value under every pattern.
#[derive(Clone, Debug)]
pub struct SimResult {
    num_patterns: usize,
    words_per_signal: usize,
    tail_mask: u64,
    /// Indexed by arena position; tombstones hold empty vectors.
    values: Vec<Vec<u64>>,
}

impl SimResult {
    /// Number of simulated patterns.
    #[inline]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Number of words per signal.
    #[inline]
    pub fn words_per_signal(&self) -> usize {
        self.words_per_signal
    }

    /// The signature (value words) of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not live at simulation time.
    pub fn node_words(&self, id: NodeId) -> &[u64] {
        let w = &self.values[id.index()];
        assert!(!w.is_empty(), "node {id} was not simulated");
        w
    }

    /// The value of node `id` under pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not simulated or `p` is out of range.
    pub fn node_value(&self, id: NodeId, p: usize) -> bool {
        assert!(p < self.num_patterns, "pattern index out of range");
        self.node_words(id)[p / 64] >> (p % 64) & 1 == 1
    }

    /// How many patterns set node `id` to 1.
    pub fn count_ones(&self, id: NodeId) -> u64 {
        let words = self.node_words(id);
        let mut total = 0u64;
        for (i, w) in words.iter().enumerate() {
            let w = if i + 1 == words.len() {
                w & self.tail_mask
            } else {
                *w
            };
            total += u64::from(w.count_ones());
        }
        total
    }

    /// The signal probability of node `id` (fraction of patterns at 1).
    pub fn probability(&self, id: NodeId) -> f64 {
        self.count_ones(id) as f64 / self.num_patterns as f64 // lint:allow(as-cast): counts << 2^52, exact in f64
    }

    /// A compact hash of the node's signature (used by the redundancy
    /// pre-process to bucket candidate-identical signals).
    pub fn signature_hash(&self, id: NodeId) -> u64 {
        let words = self.node_words(id);
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for (i, w) in words.iter().enumerate() {
            let w = if i + 1 == words.len() {
                w & self.tail_mask
            } else {
                *w
            };
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Whether two nodes have identical signatures over the pattern set.
    pub fn signatures_equal(&self, a: NodeId, b: NodeId) -> bool {
        let wa = self.node_words(a);
        let wb = self.node_words(b);
        let n = wa.len();
        wa.iter().zip(wb).enumerate().all(|(i, (x, y))| {
            if i + 1 == n {
                (x ^ y) & self.tail_mask == 0
            } else {
                x == y
            }
        })
    }

    /// The number of patterns on which two simulated nodes differ.
    pub fn difference_count(&self, a: NodeId, b: NodeId) -> u64 {
        let wa = self.node_words(a);
        let wb = self.node_words(b);
        let n = wa.len();
        let mut total = 0u64;
        for (i, (x, y)) in wa.iter().zip(wb).enumerate() {
            let d = if i + 1 == n {
                (x ^ y) & self.tail_mask
            } else {
                x ^ y
            };
            total += u64::from(d.count_ones());
        }
        total
    }

    /// Mask selecting the valid bits of the final word.
    #[inline]
    pub fn tail_mask(&self) -> u64 {
        self.tail_mask
    }

    /// The raw per-arena-position signature storage (for [`SimView`]).
    ///
    /// [`SimView`]: crate::SimView
    #[inline]
    pub(crate) fn values(&self) -> &[Vec<u64>] {
        &self.values
    }
}

/// Simulates the network under the pattern set, producing per-node
/// signatures. One run serves every consumer: error-rate measurement, local
/// pattern statistics and signature-based redundancy detection (§3.2, §6).
///
/// # Panics
///
/// Panics if `patterns.num_pis()` differs from the network's PI count.
pub fn simulate(net: &Network, patterns: &PatternSet) -> SimResult {
    assert_eq!(
        patterns.num_pis(),
        net.num_pis(),
        "pattern set drives a different PI count"
    );
    let wps = patterns.words_per_signal();
    let arena = net.node_ids().map(NodeId::index).max().map_or(0, |m| m + 1);
    let mut values: Vec<Vec<u64>> = vec![Vec::new(); arena];
    for (i, &pi) in net.pis().iter().enumerate() {
        values[pi.index()] = patterns.pi_words(i).to_vec();
    }
    for id in net.topo_order() {
        let node = net.node(id);
        if node.is_pi() {
            continue;
        }
        let mut acc = vec![0u64; wps];
        for cube in node.cover().cubes() {
            let mut term = vec![u64::MAX; wps];
            for (var, phase) in cube.literals() {
                let fanin_words = &values[node.fanins()[var].index()];
                for (t, f) in term.iter_mut().zip(fanin_words) {
                    *t &= if phase { *f } else { !*f };
                }
            }
            for (a, t) in acc.iter_mut().zip(&term) {
                *a |= t;
            }
        }
        values[id.index()] = acc;
    }
    SimResult {
        num_patterns: patterns.num_patterns(),
        words_per_signal: wps,
        tail_mask: patterns.tail_mask(),
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    fn xor_net() -> (Network, NodeId) {
        let mut net = Network::new("xor");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let y = net.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(
                2,
                [
                    cube(&[(0, true), (1, false)]),
                    cube(&[(0, false), (1, true)]),
                ],
            ),
        );
        net.add_po("y", y);
        (net, y)
    }

    #[test]
    fn exhaustive_simulation_matches_eval() {
        let (net, y) = xor_net();
        let patterns = PatternSet::exhaustive(2).unwrap();
        let sim = simulate(&net, &patterns);
        for p in 0..4 {
            let pis: Vec<bool> = (0..2).map(|i| patterns.pi_value(i, p)).collect();
            assert_eq!(sim.node_value(y, p), net.eval(&pis)[0], "pattern {p}");
        }
        assert_eq!(sim.count_ones(y), 2);
        assert!((sim.probability(y) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_simulation_matches_eval_spotchecks() {
        let (net, y) = xor_net();
        let patterns = PatternSet::random(2, 256, 42);
        let sim = simulate(&net, &patterns);
        for p in (0..256).step_by(17) {
            let pis: Vec<bool> = (0..2).map(|i| patterns.pi_value(i, p)).collect();
            assert_eq!(sim.node_value(y, p), net.eval(&pis)[0]);
        }
    }

    #[test]
    fn constant_nodes_simulate() {
        let mut net = Network::new("consts");
        let _a = net.add_pi("a");
        let k1 = net.add_constant("k1", true);
        let k0 = net.add_constant("k0", false);
        net.add_po("k1", k1);
        net.add_po("k0", k0);
        let patterns = PatternSet::exhaustive(1).unwrap();
        let sim = simulate(&net, &patterns);
        assert_eq!(sim.count_ones(k1), 2);
        assert_eq!(sim.count_ones(k0), 0);
    }

    #[test]
    fn signature_identity_and_hash() {
        let mut net = Network::new("dup");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g1 = net.add_node(
            "g1",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let g2 = net.add_node(
            "g2",
            vec![b, a],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let g3 = net.add_node("g3", vec![a, b], Cover::from_cubes(2, [cube(&[(0, true)])]));
        net.add_po("g1", g1);
        net.add_po("g2", g2);
        net.add_po("g3", g3);
        let sim = simulate(&net, &PatternSet::exhaustive(2).unwrap());
        assert!(sim.signatures_equal(g1, g2));
        assert_eq!(sim.signature_hash(g1), sim.signature_hash(g2));
        assert!(!sim.signatures_equal(g1, g3));
        assert_eq!(sim.difference_count(g1, g3), 1); // a=1,b=0
    }

    #[test]
    #[should_panic(expected = "different PI count")]
    fn pi_count_mismatch_panics() {
        let (net, _) = xor_net();
        let patterns = PatternSet::exhaustive(3).unwrap();
        let _ = simulate(&net, &patterns);
    }
}
