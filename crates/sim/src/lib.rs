//! Bit-parallel logic simulation for the ALS stack.
//!
//! The paper measures error rates by logic simulation with 10 000 random
//! primary-input vectors (§6) and collects, in a *single* simulation run, the
//! occurrence probability of every local input pattern of every node (§3.2).
//! This crate provides exactly those services, 64 patterns per machine word:
//!
//! * [`PatternSet`] — random or exhaustive PI stimulus;
//! * [`simulate`] / [`SimResult`] — per-node signatures over the pattern set;
//! * [`local_pattern_counts`] — per-node local-input-pattern statistics;
//! * [`error_rate`] / [`error_rate_vs_reference`] — whole-network error rate
//!   (the fraction of patterns on which *any* PO differs).
//!
//! # Example
//!
//! ```
//! use als_network::Network;
//! use als_logic::{Cover, Cube};
//! use als_sim::{simulate, PatternSet};
//!
//! let mut net = Network::new("and2");
//! let a = net.add_pi("a");
//! let b = net.add_pi("b");
//! let y = net.add_node("y", vec![a, b],
//!     Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)])?]));
//! net.add_po("y", y);
//!
//! let patterns = PatternSet::exhaustive(2)?;
//! let sim = simulate(&net, &patterns);
//! // a·b is true on exactly 1 of the 4 exhaustive patterns.
//! assert_eq!(sim.count_ones(y), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

mod error_rate;
mod incremental;
mod lanes;
mod local;
mod magnitude;
mod patterns;
mod simulator;
mod view;

pub use error_rate::{
    error_count_range_from_view, error_rate, error_rate_from_view, error_rate_vs_reference,
    per_output_error_rates, po_words,
};
pub use incremental::{IncrementalSim, ResimStats, UpdateDelta};
pub use local::{
    local_pattern_counts, local_pattern_counts_view, local_pattern_probabilities,
    local_pattern_probabilities_view, MAX_LOCAL_FANINS,
};
pub use magnitude::{
    magnitude_stats, magnitude_stats_from_view, magnitude_stats_vs_reference, MagnitudeStats,
};
pub use patterns::{ExhaustiveTooLarge, PatternSet};
pub use simulator::{simulate, SimResult};
pub use view::{DiffProbe, SimView};

/// The paper's default number of random simulation vectors (§6): 10 000,
/// rounded up to a whole number of 64-bit words (157 × 64 = 10 048).
pub const DEFAULT_NUM_PATTERNS: usize = 157 * 64;
