use crate::{lanes, simulate, PatternSet, SimResult, SimView};
use als_network::Network;

/// The error rate between two networks over a pattern set: the fraction of
/// patterns on which **any** primary output differs (the paper's error-rate
/// definition).
///
/// Both networks are simulated; use [`error_rate_vs_reference`] to reuse a
/// stored reference simulation across iterations.
///
/// # Panics
///
/// Panics if the networks disagree in PI or PO count, or the pattern set
/// drives a different PI count.
pub fn error_rate(golden: &Network, approx: &Network, patterns: &PatternSet) -> f64 {
    assert_eq!(golden.num_pos(), approx.num_pos(), "PO count mismatch");
    let ref_sim = simulate(golden, patterns);
    let ref_words = po_words(golden, &ref_sim);
    error_rate_vs_reference(&ref_words, approx, patterns)
}

/// Extracts the PO signature words of a simulated network, in PO order.
pub fn po_words(net: &Network, sim: &SimResult) -> Vec<Vec<u64>> {
    net.pos()
        .iter()
        .map(|(_, d)| sim.node_words(*d).to_vec())
        .collect()
}

/// The error rate of `approx` against stored reference PO signatures
/// (produced by [`po_words`] on the golden network with the *same* pattern
/// set).
///
/// # Panics
///
/// Panics if the reference PO count differs from the network's.
pub fn error_rate_vs_reference(
    reference: &[Vec<u64>],
    approx: &Network,
    patterns: &PatternSet,
) -> f64 {
    let sim = simulate(approx, patterns);
    error_rate_from_view(reference, approx, sim.view())
}

/// The error rate of already-simulated signatures (a [`SimView`], typically
/// an [`IncrementalSim`](crate::IncrementalSim)'s current state) against
/// stored reference PO signatures. Arithmetic is identical word-by-word to
/// [`error_rate_vs_reference`], so incremental and full measurement paths
/// produce bit-identical rates.
///
/// # Panics
///
/// Panics if the reference PO count differs from the network's.
pub fn error_rate_from_view(reference: &[Vec<u64>], approx: &Network, sim: SimView<'_>) -> f64 {
    let wps = sim.words_per_signal();
    let errors = error_count_range_from_view(reference, approx, sim, 0, wps);
    errors as f64 / sim.num_patterns() as f64 // lint:allow(as-cast): counts << 2^52, exact in f64
}

/// The number of erroneous patterns within the word sub-range `[start_word,
/// end_word)` of the signatures: patterns in that range on which any PO of
/// `approx` differs from the stored reference.
///
/// This is the partial-sum form backing the adaptive sampler: summing the
/// counts over a partition of `[0, words_per_signal)` equals the count a
/// single full-range call produces, and `error_count / num_patterns` over
/// the full range is exactly [`error_rate_from_view`]'s rate (same XOR-OR
/// accumulation, same masked popcount, same words). The tail mask applies
/// iff the range includes the final word.
///
/// # Panics
///
/// Panics if the reference PO count differs from the network's or the range
/// is out of bounds.
pub fn error_count_range_from_view(
    reference: &[Vec<u64>],
    approx: &Network,
    sim: SimView<'_>,
    start_word: usize,
    end_word: usize,
) -> u64 {
    assert_eq!(reference.len(), approx.num_pos(), "PO count mismatch");
    let wps = sim.words_per_signal();
    assert!(
        start_word <= end_word && end_word <= wps,
        "word range out of bounds"
    );
    let mut any_diff = vec![0u64; end_word - start_word];
    for (r, (_, d)) in reference.iter().zip(approx.pos()) {
        let a = sim.node_words(*d);
        lanes::xor_or_accumulate(
            &mut any_diff,
            &r[start_word..end_word],
            &a[start_word..end_word],
        );
    }
    let last_mask = if end_word == wps {
        sim.tail_mask()
    } else {
        u64::MAX
    };
    lanes::popcount_masked(&any_diff, last_mask)
}

/// Per-output error rates between two networks (fraction of patterns on
/// which each individual PO differs).
///
/// # Panics
///
/// Panics if the networks disagree in PO count.
pub fn per_output_error_rates(
    golden: &Network,
    approx: &Network,
    patterns: &PatternSet,
) -> Vec<f64> {
    assert_eq!(golden.num_pos(), approx.num_pos(), "PO count mismatch");
    let gs = simulate(golden, patterns);
    let asim = simulate(approx, patterns);
    let tail = gs.tail_mask();
    let n = patterns.num_patterns() as f64; // lint:allow(as-cast): counts << 2^52, exact in f64
    golden
        .pos()
        .iter()
        .zip(approx.pos())
        .map(|((_, gd), (_, ad))| {
            let gw = gs.node_words(*gd);
            let aw = asim.node_words(*ad);
            let mut diff = vec![0u64; gw.len()];
            lanes::xor_or_accumulate(&mut diff, gw, aw);
            lanes::popcount_masked(&diff, tail) as f64 / n // lint:allow(as-cast): counts << 2^52, exact in f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    fn and_or_pair() -> (Network, Network) {
        // golden: y = a·b; approx: y = a (wrong when a=1,b=0).
        let mut golden = Network::new("g");
        let a = golden.add_pi("a");
        let b = golden.add_pi("b");
        let y = golden.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        golden.add_po("y", y);

        let mut approx = Network::new("a");
        let a2 = approx.add_pi("a");
        let _b2 = approx.add_pi("b");
        let y2 = approx.add_node("y", vec![a2], Cover::from_cubes(1, [cube(&[(0, true)])]));
        approx.add_po("y", y2);
        (golden, approx)
    }

    #[test]
    fn exact_error_rate_on_exhaustive_patterns() {
        let (g, a) = and_or_pair();
        let p = PatternSet::exhaustive(2).unwrap();
        // Differs only on (a=1, b=0): 1 of 4 patterns.
        assert!((error_rate(&g, &a, &p) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn identical_networks_have_zero_error() {
        let (g, _) = and_or_pair();
        let p = PatternSet::random(2, 1024, 3);
        assert_eq!(error_rate(&g, &g.clone(), &p), 0.0);
    }

    #[test]
    fn reference_reuse_matches_direct() {
        let (g, a) = and_or_pair();
        let p = PatternSet::exhaustive(2).unwrap();
        let gs = simulate(&g, &p);
        let refw = po_words(&g, &gs);
        let direct = error_rate(&g, &a, &p);
        let reused = error_rate_vs_reference(&refw, &a, &p);
        assert_eq!(direct, reused);
    }

    #[test]
    fn per_output_rates() {
        // Two POs: one exact, one approximated.
        let mut golden = Network::new("g2");
        let a = golden.add_pi("a");
        let b = golden.add_pi("b");
        let y1 = golden.add_node(
            "y1",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let y2 = golden.add_node(
            "y2",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        golden.add_po("y1", y1);
        golden.add_po("y2", y2);
        let mut approx = golden.clone();
        let d = approx.pos()[0].1;
        approx.replace_with_constant(d, false); // y1 ≡ 0
        let p = PatternSet::exhaustive(2).unwrap();
        let rates = per_output_error_rates(&golden, &approx, &p);
        assert!((rates[0] - 0.25).abs() < 1e-12); // ab = 1 on 1/4 patterns
        assert_eq!(rates[1], 0.0);
        // Whole-network rate equals the union of per-output errors here.
        assert!((error_rate(&golden, &approx, &p) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn random_error_rate_converges() {
        let (g, a) = and_or_pair();
        let p = PatternSet::random(2, 64 * 400, 11);
        let er = error_rate(&g, &a, &p);
        assert!((er - 0.25).abs() < 0.03, "sampled {er}");
    }
}
