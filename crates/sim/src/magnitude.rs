//! Numeric error-magnitude measurement.
//!
//! The paper constrains the **error rate** and names the combined
//! rate-plus-magnitude problem as future work (§7). This module provides the
//! measurement side of that extension: interpreting the POs as a
//! little-endian binary number (PO `i` has weight `2^i`, the convention of
//! every arithmetic circuit in `als-circuits`), it reports the maximal and
//! mean absolute deviation of an approximate network from golden reference
//! signatures.

use crate::{simulate, PatternSet, SimView};
use als_network::Network;

/// Deviation statistics of an approximate network over a pattern set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MagnitudeStats {
    /// The worst absolute deviation over all patterns (the paper's "error
    /// magnitude" metric).
    pub max_abs: u128,
    /// The mean absolute deviation.
    pub mean_abs: f64,
    /// Number of patterns with any deviation (numerator of the error rate).
    pub num_erroneous: u64,
}

/// Measures deviation statistics of `approx` against golden PO signatures
/// (produced by [`crate::po_words`] on the same pattern set). PO `i` is
/// weighted `2^i`.
///
/// # Panics
///
/// Panics if the reference PO count differs from the network's, or exceeds
/// 128 outputs (the widest representable value).
pub fn magnitude_stats_vs_reference(
    reference: &[Vec<u64>],
    approx: &Network,
    patterns: &PatternSet,
) -> MagnitudeStats {
    let sim = simulate(approx, patterns);
    magnitude_stats_from_view(reference, approx, sim.view())
}

/// Measures deviation statistics from already-simulated signatures (a
/// [`SimView`], typically an [`IncrementalSim`](crate::IncrementalSim)'s
/// current state). The per-pattern loop is shared with
/// [`magnitude_stats_vs_reference`], so both paths agree bit-for-bit.
///
/// # Panics
///
/// Same conditions as [`magnitude_stats_vs_reference`].
pub fn magnitude_stats_from_view(
    reference: &[Vec<u64>],
    approx: &Network,
    sim: SimView<'_>,
) -> MagnitudeStats {
    assert_eq!(reference.len(), approx.num_pos(), "PO count mismatch");
    assert!(
        approx.num_pos() <= 128,
        "magnitude interpretation limited to 128 outputs"
    );
    let approx_words: Vec<&[u64]> = approx
        .pos()
        .iter()
        .map(|(_, d)| sim.node_words(*d))
        .collect();

    let mut max_abs = 0u128;
    let mut sum_abs = 0f64;
    let mut num_erroneous = 0u64;
    for p in 0..sim.num_patterns() {
        let w = p / 64;
        let b = p % 64;
        let mut golden_value = 0u128;
        let mut approx_value = 0u128;
        for (i, (r, a)) in reference.iter().zip(&approx_words).enumerate() {
            if r[w] >> b & 1 == 1 {
                golden_value |= 1 << i;
            }
            if a[w] >> b & 1 == 1 {
                approx_value |= 1 << i;
            }
        }
        let diff = golden_value.abs_diff(approx_value);
        if diff != 0 {
            num_erroneous += 1;
            max_abs = max_abs.max(diff);
            sum_abs += diff as f64; // lint:allow(as-cast): counts << 2^52, exact in f64
        }
    }
    MagnitudeStats {
        max_abs,
        mean_abs: sum_abs / sim.num_patterns() as f64, // lint:allow(as-cast): counts << 2^52, exact in f64
        num_erroneous,
    }
}

/// Convenience wrapper measuring one network against another directly.
///
/// # Panics
///
/// Same conditions as [`magnitude_stats_vs_reference`], plus a PI-count
/// mismatch between the networks and pattern set.
pub fn magnitude_stats(
    golden: &Network,
    approx: &Network,
    patterns: &PatternSet,
) -> MagnitudeStats {
    let gs = simulate(golden, patterns);
    let reference = crate::po_words(golden, &gs);
    magnitude_stats_vs_reference(&reference, approx, patterns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    /// golden: y1y0 = (a, a·b); approx drops the AND: y1y0 = (a, a).
    fn pair() -> (Network, Network) {
        let mut golden = Network::new("g");
        let a = golden.add_pi("a");
        let b = golden.add_pi("b");
        let y0 = golden.add_node(
            "y0",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let y1 = golden.add_node("y1", vec![a], Cover::from_cubes(1, [cube(&[(0, true)])]));
        golden.add_po("y0", y0);
        golden.add_po("y1", y1);

        let mut approx = golden.clone();
        let d0 = approx.pos()[0].1;
        approx.replace_expr(d0, als_logic::Expr::lit(0, true)); // y0 := a
        (golden, approx)
    }

    #[test]
    fn deviation_on_exhaustive_patterns() {
        let (golden, approx) = pair();
        let p = PatternSet::exhaustive(2).unwrap();
        let stats = magnitude_stats(&golden, &approx, &p);
        // Wrong only at (a=1, b=0): golden 10₂=2, approx 11₂=3 → diff 1.
        assert_eq!(stats.max_abs, 1);
        assert_eq!(stats.num_erroneous, 1);
        assert!((stats.mean_abs - 0.25).abs() < 1e-12);
    }

    #[test]
    fn identical_networks_have_zero_magnitude() {
        let (golden, _) = pair();
        let p = PatternSet::random(2, 512, 9);
        let stats = magnitude_stats(&golden, &golden.clone(), &p);
        assert_eq!(stats.max_abs, 0);
        assert_eq!(stats.num_erroneous, 0);
        assert_eq!(stats.mean_abs, 0.0);
    }

    #[test]
    fn msb_errors_weigh_more() {
        let (golden, _) = pair();
        let mut approx = golden.clone();
        let d1 = approx.pos()[1].1;
        approx.replace_with_constant(d1, false); // y1 := 0, wrong whenever a=1
        let p = PatternSet::exhaustive(2).unwrap();
        let stats = magnitude_stats(&golden, &approx, &p);
        assert_eq!(stats.max_abs, 2, "MSB flip costs 2^1");
        assert_eq!(stats.num_erroneous, 2);
    }
}
