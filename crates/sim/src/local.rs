use crate::{lanes, SimResult, SimView};
use als_network::{Network, NodeId};

/// Maximum fanin count for local-pattern enumeration (`2^k` counters).
pub const MAX_LOCAL_FANINS: usize = 16;

/// Fanin counts up to this bound use the dense minterm path: one word-wise
/// AND-reduction per local pattern (`2^k · k` chunked word ops) instead of
/// the per-bit column gather (`64 · k` scalar bit probes per word). The
/// crossover favors dense for every k the paper's covers actually use.
const DENSE_LOCAL_FANINS: usize = 6;

/// Counts how often each local input pattern of node `id` occurs over the
/// simulated pattern set.
///
/// Local pattern `v` assigns bit `i` of `v` to fanin `i` of the node. The
/// returned vector has `2^k` entries for a node with `k` fanins. This is the
/// §3.2 statistic: one simulation run provides the probabilities of all the
/// local input patterns of every node.
///
/// # Panics
///
/// Panics if the node has more than [`MAX_LOCAL_FANINS`] fanins or was not
/// simulated.
pub fn local_pattern_counts(net: &Network, sim: &SimResult, id: NodeId) -> Vec<u64> {
    local_pattern_counts_view(net, sim.view(), id)
}

/// [`local_pattern_counts`] over a thread-shareable [`SimView`].
///
/// # Panics
///
/// Same conditions as [`local_pattern_counts`].
pub fn local_pattern_counts_view(net: &Network, sim: SimView<'_>, id: NodeId) -> Vec<u64> {
    let node = net.node(id);
    let k = node.fanins().len();
    assert!(
        k <= MAX_LOCAL_FANINS,
        "node {id} has {k} fanins, exceeding the local-pattern limit"
    );
    let mut counts = vec![0u64; 1 << k];
    if k == 0 {
        counts[0] = sim.num_patterns() as u64; // lint:allow(as-cast): usize fits u64 on all supported targets
        return counts;
    }
    let fanin_words: Vec<&[u64]> = node.fanins().iter().map(|&f| sim.node_words(f)).collect();
    let wps = sim.words_per_signal();
    let tail = sim.tail_mask();
    if k <= DENSE_LOCAL_FANINS {
        dense_counts(&fanin_words, wps, tail, &mut counts);
    } else {
        gather_counts(&fanin_words, wps, tail, &mut counts);
    }
    counts
}

/// Dense minterm path: local pattern `v` occurs exactly where the AND of
/// each fanin's (possibly complemented) signature is 1. The minterms
/// partition the pattern set, so the counts sum to `num_patterns` by
/// construction — same totals, per-pattern, as [`gather_counts`].
fn dense_counts(fanin_words: &[&[u64]], wps: usize, tail: u64, counts: &mut [u64]) {
    let mut term = vec![0u64; wps];
    for (v, count) in counts.iter_mut().enumerate() {
        term.fill(u64::MAX);
        for (i, fw) in fanin_words.iter().enumerate() {
            lanes::and_phase(&mut term, fw, v >> i & 1 == 1);
        }
        *count = lanes::popcount_masked(&term, tail);
    }
}

/// Per-bit column gather: transpose each word of the fanin signatures one
/// valid pattern bit at a time and bump that pattern's counter.
fn gather_counts(fanin_words: &[&[u64]], wps: usize, tail: u64, counts: &mut [u64]) {
    for w in 0..wps {
        let valid = if w + 1 == wps { tail } else { u64::MAX };
        if valid == 0 {
            continue;
        }
        let bits = 64 - valid.leading_zeros() as usize; // lint:allow(as-cast): u32 bit index fits usize
        let cols: Vec<u64> = fanin_words.iter().map(|fw| fw[w]).collect();
        for b in 0..bits {
            if valid >> b & 1 == 0 {
                continue;
            }
            let mut v = 0usize;
            for (i, c) in cols.iter().enumerate() {
                if c >> b & 1 == 1 {
                    v |= 1 << i;
                }
            }
            counts[v] += 1;
        }
    }
}

/// The probabilities of the local input patterns of node `id` (counts
/// normalized by the number of simulated patterns).
///
/// # Panics
///
/// Same conditions as [`local_pattern_counts`].
pub fn local_pattern_probabilities(net: &Network, sim: &SimResult, id: NodeId) -> Vec<f64> {
    local_pattern_probabilities_view(net, sim.view(), id)
}

/// [`local_pattern_probabilities`] over a thread-shareable [`SimView`].
///
/// # Panics
///
/// Same conditions as [`local_pattern_counts`].
pub fn local_pattern_probabilities_view(net: &Network, sim: SimView<'_>, id: NodeId) -> Vec<f64> {
    let n = sim.num_patterns() as f64; // lint:allow(as-cast): counts << 2^52, exact in f64
    local_pattern_counts_view(net, sim, id)
        .into_iter()
        .map(|c| c as f64 / n) // lint:allow(as-cast): counts << 2^52, exact in f64
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, PatternSet};
    use als_logic::{Cover, Cube};
    use als_network::Network;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    #[test]
    fn exhaustive_counts_are_uniform_for_independent_fanins() {
        let mut net = Network::new("t");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let y = net.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        net.add_po("y", y);
        let p = PatternSet::exhaustive(2).unwrap();
        let sim = simulate(&net, &p);
        let counts = local_pattern_counts(&net, &sim, y);
        assert_eq!(counts, vec![1, 1, 1, 1]);
        let probs = local_pattern_probabilities(&net, &sim, y);
        assert!(probs.iter().all(|&p| (p - 0.25).abs() < 1e-12));
    }

    #[test]
    fn correlated_fanins_skew_counts() {
        // y's fanins are g = a AND b, and a itself: pattern (g=1, a=0) is
        // impossible — a satisfiability don't-care visible in the counts.
        let mut net = Network::new("c");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let g = net.add_node(
            "g",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let y = net.add_node(
            "y",
            vec![g, a],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        net.add_po("y", y);
        let p = PatternSet::exhaustive(2).unwrap();
        let sim = simulate(&net, &p);
        let counts = local_pattern_counts(&net, &sim, y);
        // Pattern bit 0 = g, bit 1 = a.
        // v=0 (g=0,a=0): 2 patterns; v=1 (g=1,a=0): impossible (SDC);
        // v=2 (g=0,a=1): a=1,b=0 → 1 pattern; v=3 (g=1,a=1): 1 pattern.
        assert_eq!(counts, vec![2, 0, 1, 1]);
    }

    #[test]
    fn counts_sum_to_pattern_count() {
        let mut net = Network::new("s");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let c = net.add_pi("c");
        let y = net.add_node(
            "y",
            vec![a, b, c],
            Cover::from_cubes(3, [cube(&[(0, true), (1, true), (2, false)])]),
        );
        net.add_po("y", y);
        let p = PatternSet::random(3, 1000, 5);
        let sim = simulate(&net, &p);
        let counts = local_pattern_counts(&net, &sim, y);
        assert_eq!(counts.iter().sum::<u64>(), p.num_patterns() as u64);
    }

    /// The dense minterm path and the per-bit gather path must agree count
    /// for count on every fanin width up to the dense cutoff, including a
    /// non-multiple-of-64 pattern count (tail-masked final word).
    #[test]
    fn dense_and_gather_paths_agree() {
        for k in 1..=DENSE_LOCAL_FANINS {
            for n in [100usize, 128] {
                // from_vectors keeps the exact count (100 stays 100, with a
                // tail-masked final word) — the case the dense path must not
                // over-count.
                let mut state = 7 + k as u64; // lint:allow(as-cast): small k
                let vectors: Vec<u64> = (0..n)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6_364_136_223_846_793_005)
                            .wrapping_add(1);
                        state >> 8
                    })
                    .collect();
                let p = PatternSet::from_vectors(k, &vectors);
                assert_eq!(p.num_patterns(), n);
                let wps = p.words_per_signal();
                let fanin_words: Vec<&[u64]> = (0..k).map(|i| p.pi_words(i)).collect();
                let mut dense = vec![0u64; 1 << k];
                let mut gather = vec![0u64; 1 << k];
                dense_counts(&fanin_words, wps, p.tail_mask(), &mut dense);
                gather_counts(&fanin_words, wps, p.tail_mask(), &mut gather);
                assert_eq!(dense, gather, "k={k} n={n}");
                assert_eq!(dense.iter().sum::<u64>(), n as u64, "k={k} n={n}"); // lint:allow(as-cast): n <= 128
            }
        }
    }

    #[test]
    fn constant_node_counts() {
        let mut net = Network::new("k");
        let _a = net.add_pi("a");
        let k = net.add_constant("k", true);
        net.add_po("k", k);
        let p = PatternSet::exhaustive(1).unwrap();
        let sim = simulate(&net, &p);
        let counts = local_pattern_counts(&net, &sim, k);
        assert_eq!(counts, vec![2]);
    }
}
