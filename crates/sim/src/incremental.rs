//! Incremental dirty-set resimulation.
//!
//! Every accepted change in the paper's Algorithms 1/2 (and every SASIMI
//! substitution trial) alters only the transitive fanout of the rewritten
//! nodes, yet a fresh [`simulate`] recomputes the whole network. This module
//! keeps a persistent signature arena alive across iterations and, given the
//! *dirty set* of nodes whose function changed, resimulates only `TFO(dirty)`
//! in topological order — early-exiting any branch whose recomputed
//! signature equals its cached one (word-wise compare; the canonical-tail
//! invariant makes plain `==` exact).
//!
//! # Dirty-set contract
//!
//! Between two `update` calls the caller may mutate the network arbitrarily
//! as long as `dirty` lists every *surviving* node whose cover or fanin list
//! changed. Nodes that died are found by liveness reconciliation, and nodes
//! that appeared are resimulated because their slot is not live yet; neither
//! needs to be listed. Primary inputs never change (the stimulus is frozen
//! at construction).
//!
//! # Rollback protocol
//!
//! Every slot overwrite (and liveness transition) since the last
//! [`IncrementalSim::commit`] is recorded in an undo log. A rejected
//! candidate calls [`IncrementalSim::rollback`], restoring the arena in
//! `O(|dirty cone|)` words; an accepted one calls `commit`, which merely
//! clears the log.

use crate::simulator::eval_node_range;
use crate::{lanes, simulate, PatternSet, SimView};
use als_network::{Network, NodeId};

/// One undone-able arena mutation: the slot's previous words and liveness.
#[derive(Clone, Debug)]
struct UndoEntry {
    index: usize,
    was_live: bool,
    old_words: Vec<u64>,
}

/// Per-[`update`](IncrementalSim::update) work counts, for telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateDelta {
    /// Distinct live internal nodes the caller marked dirty.
    pub dirty: u64,
    /// Nodes actually re-evaluated (cube evaluation executed).
    pub resim_nodes: u64,
    /// Nodes structurally inside `TFO(dirty)` that were *not* re-evaluated
    /// because every fanin's recomputed signature matched its cached one.
    pub skipped_early_exit: u64,
    /// Nodes a full (non-incremental) resimulation would have evaluated —
    /// every live non-PI node. `resim_nodes < full_equivalent` is the
    /// incremental saving.
    pub full_equivalent: u64,
    /// Signature words actually evaluated: `resim_nodes × range width`. A
    /// ranged update ([`update_range`](IncrementalSim::update_range)) does
    /// proportionally less word work per node, which this counter makes
    /// visible where `resim_nodes` alone cannot.
    pub words_simulated: u64,
}

/// Cumulative [`UpdateDelta`]s over the life of an [`IncrementalSim`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResimStats {
    /// Number of `update` calls.
    pub updates: u64,
    /// Total nodes re-evaluated across all updates.
    pub resim_nodes: u64,
    /// Total early-exit skips across all updates.
    pub skipped_early_exit: u64,
    /// Total nodes full resimulation would have evaluated across the same
    /// updates.
    pub full_equivalent: u64,
    /// Total signature words evaluated across all updates.
    pub words_simulated: u64,
}

impl ResimStats {
    fn absorb(&mut self, d: UpdateDelta) {
        self.updates += 1;
        self.resim_nodes += d.resim_nodes;
        self.skipped_early_exit += d.skipped_early_exit;
        self.full_equivalent += d.full_equivalent;
        self.words_simulated += d.words_simulated;
    }
}

/// A persistent, incrementally-updatable simulation of one network under one
/// frozen pattern set.
///
/// Construction runs one full [`simulate`]; afterwards each
/// [`update`](IncrementalSim::update) touches only the dirty cone. The
/// current signatures are exposed through [`SimView`], so every existing
/// consumer (error rates, local pattern statistics, candidate pricing) reads
/// incremental state exactly as it reads a fresh [`SimResult`](crate::SimResult).
#[derive(Clone, Debug)]
pub struct IncrementalSim {
    num_patterns: usize,
    words_per_signal: usize,
    tail_mask: u64,
    /// Flat signature arena, stride `words_per_signal` (see
    /// [`SimResult`](crate::SimResult)).
    words: Vec<u64>,
    live: Vec<bool>,
    undo: Vec<UndoEntry>,
    /// Slots that became live during the current undo span (since the last
    /// commit/rollback). A ranged update must re-evaluate these even when no
    /// fanin changed in-range: their words outside previously-computed
    /// ranges have never been written.
    span_new: Vec<bool>,
    /// Indices set in `span_new`, so clearing the span is `O(|touched|)`.
    span_touched: Vec<usize>,
    stats: ResimStats,
    full_resim: bool,
    /// Test-only fault injection: skip the Nth would-be recomputation,
    /// leaving that TFO node silently stale. Proves the differential suite
    /// is falsifiable.
    #[cfg(test)]
    sabotage_skip_nth: Option<u64>,
    #[cfg(test)]
    recompute_counter: u64,
}

impl IncrementalSim {
    /// Fully simulates `net` under `patterns` and freezes the result as the
    /// initial arena state.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.num_pis()` differs from the network's PI count.
    pub fn new(net: &Network, patterns: &PatternSet) -> Self {
        let sim = simulate(net, patterns);
        IncrementalSim {
            num_patterns: sim.num_patterns(),
            words_per_signal: sim.words_per_signal(),
            tail_mask: sim.tail_mask(),
            words: sim.words().to_vec(),
            live: sim.live().to_vec(),
            undo: Vec::new(),
            span_new: Vec::new(),
            span_touched: Vec::new(),
            stats: ResimStats::default(),
            full_resim: false,
            #[cfg(test)]
            sabotage_skip_nth: None,
            #[cfg(test)]
            recompute_counter: 0,
        }
    }

    /// Escape hatch: when enabled, every `update` re-evaluates all live
    /// nodes (the pre-incremental behaviour) while keeping the same API,
    /// counters and rollback protocol. Results are bit-identical either way;
    /// this exists to *prove* that, and to isolate suspected incremental
    /// bugs in the field.
    pub fn set_full_resim(&mut self, on: bool) {
        self.full_resim = on;
    }

    /// Whether the full-resimulation escape hatch is on.
    #[inline]
    pub fn full_resim(&self) -> bool {
        self.full_resim
    }

    /// Number of simulated patterns.
    #[inline]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Number of words per signal (the full word range of
    /// [`update_range`](Self::update_range)).
    #[inline]
    pub fn words_per_signal(&self) -> usize {
        self.words_per_signal
    }

    /// Cumulative work counters since construction.
    #[inline]
    pub fn stats(&self) -> ResimStats {
        self.stats
    }

    /// A borrowed view of the current signatures (same shape as
    /// [`SimResult::view`](crate::SimResult::view)).
    pub fn view(&self) -> SimView<'_> {
        SimView {
            num_patterns: self.num_patterns,
            words_per_signal: self.words_per_signal,
            tail_mask: self.tail_mask,
            words: &self.words,
            live: &self.live,
        }
    }

    /// Brings the arena up to date with `net`, given the set of surviving
    /// nodes whose function changed since the previous `update`/`new`.
    ///
    /// Walks the network once in topological order; a node is re-evaluated
    /// iff it is dirty, newly live, or some fanin's signature actually
    /// changed. A re-evaluated node whose fresh signature equals its cached
    /// one stops the propagation along that branch (the early exit). All
    /// overwrites are undo-logged until the next [`commit`](Self::commit) or
    /// [`rollback`](Self::rollback).
    ///
    /// # Panics
    ///
    /// Panics if `net` gained primary inputs since construction (the frozen
    /// stimulus cannot drive them).
    pub fn update(&mut self, net: &Network, dirty: &[NodeId]) -> UpdateDelta {
        self.update_range(net, dirty, 0, self.words_per_signal)
    }

    /// [`update`](Self::update) restricted to the word sub-range
    /// `[start_word, end_word)` of every signature — the resumable form
    /// backing adaptive pattern sampling. A caller may bring a prefix of the
    /// arena up to date first (cheap early decisions read only those words)
    /// and extend to further ranges later; once the ranges called since the
    /// last commit/rollback cover `[0, words_per_signal)`, the arena is
    /// word-identical to one produced by a single full [`update`](Self::update).
    ///
    /// Contract for multi-round use within one undo span: pass the same
    /// `dirty` list every round and make **no** structural changes to `net`
    /// between rounds — a mid-span rewrite (even a function-preserving one
    /// like constant propagation) would leave the rewritten nodes' uncovered
    /// word ranges stale, since they are in no round's dirty list. Structural
    /// clean-up belongs *after* the ranges cover the full width: at that
    /// point a constant propagation followed by an empty-dirty full
    /// [`update`](Self::update) reconciles sweeps exactly as in the
    /// single-round protocol. Nodes *added* before the first round (e.g. a
    /// SASIMI trial inverter) are fine: slots that became live during the
    /// span are tracked and completed in later ranges automatically.
    /// [`commit`](Self::commit) or [`rollback`](Self::rollback) ends the
    /// span.
    ///
    /// # Panics
    ///
    /// Panics if the word range is out of bounds or `net` gained primary
    /// inputs since construction.
    pub fn update_range(
        &mut self,
        net: &Network,
        dirty: &[NodeId],
        start_word: usize,
        end_word: usize,
    ) -> UpdateDelta {
        let wps = self.words_per_signal;
        assert!(
            start_word <= end_word && end_word <= wps,
            "word range out of bounds"
        );
        let arena = net.node_ids().map(NodeId::index).max().map_or(0, |m| m + 1);
        if arena > self.live.len() {
            self.live.resize(arena, false);
            self.words.resize(arena * wps, 0);
        }
        if self.live.len() > self.span_new.len() {
            self.span_new.resize(self.live.len(), false);
        }

        // Liveness reconciliation: slots of nodes swept since the last
        // update become tombstones (undo-logged, so rollback resurrects
        // them).
        let mut now_live = vec![false; self.live.len()];
        for id in net.node_ids() {
            now_live[id.index()] = true;
        }
        for (i, slot_live) in self.live.iter_mut().enumerate() {
            if *slot_live && !now_live[i] {
                self.undo.push(UndoEntry {
                    index: i,
                    was_live: true,
                    old_words: self.words[i * wps..(i + 1) * wps].to_vec(),
                });
                *slot_live = false;
            }
        }

        let mut dirty_flag = vec![false; self.live.len()];
        let mut delta = UpdateDelta::default();
        for d in dirty {
            let i = d.index();
            if now_live[i] && !net.node(*d).is_pi() && !dirty_flag[i] {
                dirty_flag[i] = true;
                delta.dirty += 1;
            }
        }

        let range_words = (end_word - start_word) as u64; // lint:allow(as-cast): usize fits u64 on all supported targets
        let mut changed = vec![false; self.live.len()];
        let mut in_tfo = vec![false; self.live.len()];
        let mut fresh = vec![0u64; end_word - start_word];
        for id in net.topo_order() {
            let i = id.index();
            let node = net.node(id);
            if node.is_pi() {
                assert!(
                    self.live[i],
                    "PI {id} has no frozen stimulus; the pattern set predates it"
                );
                continue;
            }
            delta.full_equivalent += 1;
            let newly_live = !self.live[i];
            let fanin_changed = node.fanins().iter().any(|f| changed[f.index()]);
            let structurally_in_tfo =
                dirty_flag[i] || node.fanins().iter().any(|f| in_tfo[f.index()]);
            in_tfo[i] = structurally_in_tfo;
            let recompute =
                self.full_resim || newly_live || self.span_new[i] || dirty_flag[i] || fanin_changed;
            if !recompute {
                if structurally_in_tfo {
                    delta.skipped_early_exit += 1;
                }
                continue;
            }
            #[cfg(test)]
            {
                self.recompute_counter += 1;
                if !newly_live && self.sabotage_skip_nth == Some(self.recompute_counter) {
                    // Fault injection: silently keep the stale signature.
                    continue;
                }
            }
            eval_node_range(
                net,
                id,
                &self.words,
                wps,
                self.tail_mask,
                start_word..end_word,
                &mut fresh,
            );
            delta.resim_nodes += 1;
            delta.words_simulated += range_words;
            let base = i * wps;
            if newly_live {
                self.undo.push(UndoEntry {
                    index: i,
                    was_live: false,
                    old_words: self.words[base..base + wps].to_vec(),
                });
                self.words[base + start_word..base + end_word].copy_from_slice(&fresh);
                self.live[i] = true;
                changed[i] = true;
                if !self.span_new[i] {
                    self.span_new[i] = true;
                    self.span_touched.push(i);
                }
            } else if lanes::words_differ(&self.words[base + start_word..base + end_word], &fresh) {
                self.undo.push(UndoEntry {
                    index: i,
                    was_live: true,
                    old_words: self.words[base..base + wps].to_vec(),
                });
                self.words[base + start_word..base + end_word].copy_from_slice(&fresh);
                changed[i] = true;
            }
            // Recomputed-but-identical: downstream fanouts early-exit.
        }
        self.stats.absorb(delta);
        delta
    }

    /// Restores the arena to its state at the last [`commit`](Self::commit)
    /// (or construction), discarding every update since. `O(|dirty cone|)`
    /// words.
    pub fn rollback(&mut self) {
        let wps = self.words_per_signal;
        while let Some(e) = self.undo.pop() {
            let base = e.index * wps;
            self.words[base..base + wps].copy_from_slice(&e.old_words);
            self.live[e.index] = e.was_live;
        }
        self.clear_span();
    }

    /// Accepts every update since the last commit: the undo log is cleared,
    /// making the current arena the new rollback point.
    pub fn commit(&mut self) {
        self.undo.clear();
        self.clear_span();
    }

    /// Ends the current undo span's became-live tracking (the undo log and
    /// the span always open and close together).
    fn clear_span(&mut self) {
        for i in self.span_touched.drain(..) {
            self.span_new[i] = false;
        }
    }

    /// Arms the test-only fault injection: the `nth` recomputation (1-based,
    /// counted across updates) of an already-live node is silently skipped.
    #[cfg(test)]
    pub(crate) fn sabotage_skip_nth_recompute(&mut self, nth: u64) {
        self.sabotage_skip_nth = Some(nth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube, Expr};
    use als_network::Network;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    /// A 3-level chain: y2 = (a·b) ⊕ c feeding y3 = y2 + d, so a rewrite at
    /// g1 propagates two levels.
    fn chain_net() -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new("chain");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let c = net.add_pi("c");
        let d = net.add_pi("d");
        let g1 = net.add_node(
            "g1",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        let g2 = net.add_node(
            "g2",
            vec![g1, c],
            Cover::from_cubes(
                2,
                [
                    cube(&[(0, true), (1, false)]),
                    cube(&[(0, false), (1, true)]),
                ],
            ),
        );
        let g3 = net.add_node(
            "g3",
            vec![g2, d],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        net.add_po("g3", g3);
        (net, g1, g2, g3)
    }

    /// The differential check: every live node's incremental signature must
    /// equal a fresh full simulation, word for word.
    fn assert_matches_fresh(net: &Network, patterns: &PatternSet, inc: &IncrementalSim) {
        let fresh = simulate(net, patterns);
        let view = inc.view();
        for id in net.node_ids() {
            assert_eq!(
                view.node_words(id),
                fresh.node_words(id),
                "node {id} diverged from fresh simulation"
            );
        }
    }

    #[test]
    fn update_propagates_through_the_tfo() {
        let (mut net, g1, _g2, _g3) = chain_net();
        let patterns = PatternSet::exhaustive(4).unwrap();
        let mut inc = IncrementalSim::new(&net, &patterns);
        assert_matches_fresh(&net, &patterns, &inc);
        // Rewrite g1: AND -> OR. Both levels above must refresh.
        net.replace_expr(g1, Expr::or(vec![Expr::lit(0, true), Expr::lit(1, true)]));
        let d = inc.update(&net, &[g1]);
        assert_matches_fresh(&net, &patterns, &inc);
        assert!(d.resim_nodes >= 2, "g1 and g2 must re-evaluate: {d:?}");
        assert!(d.full_equivalent >= d.resim_nodes);
    }

    #[test]
    fn rollback_restores_the_previous_arena() {
        let (mut net, g1, _g2, g3) = chain_net();
        let patterns = PatternSet::exhaustive(4).unwrap();
        let mut inc = IncrementalSim::new(&net, &patterns);
        let before: Vec<u64> = inc.view().node_words(g3).to_vec();
        let snapshot = net.clone();
        net.replace_with_constant(g1, true);
        inc.update(&net, &[g1]);
        assert_matches_fresh(&net, &patterns, &inc);
        inc.rollback();
        assert_eq!(inc.view().node_words(g3), &before[..]);
        assert_matches_fresh(&snapshot, &patterns, &inc);
    }

    #[test]
    fn early_exit_stops_propagation_of_equal_signatures() {
        let (mut net, g1, _g2, _g3) = chain_net();
        let patterns = PatternSet::exhaustive(4).unwrap();
        let mut inc = IncrementalSim::new(&net, &patterns);
        // Semantically identical rewrite of g1 (a·b with literals swapped):
        // g1 re-evaluates, its signature is unchanged, g2/g3 early-exit.
        net.replace_expr(g1, Expr::and(vec![Expr::lit(1, true), Expr::lit(0, true)]));
        let d = inc.update(&net, &[g1]);
        assert_eq!(d.resim_nodes, 1, "only g1 re-evaluates: {d:?}");
        assert!(d.skipped_early_exit >= 2, "g2+g3 early-exit: {d:?}");
        assert_matches_fresh(&net, &patterns, &inc);
    }

    #[test]
    fn full_resim_mode_recomputes_everything_and_agrees() {
        let (mut net, g1, _g2, _g3) = chain_net();
        let patterns = PatternSet::exhaustive(4).unwrap();
        let mut inc = IncrementalSim::new(&net, &patterns);
        inc.set_full_resim(true);
        net.replace_expr(g1, Expr::or(vec![Expr::lit(0, true), Expr::lit(1, false)]));
        let d = inc.update(&net, &[g1]);
        assert_eq!(d.resim_nodes, d.full_equivalent, "no node may be skipped");
        assert_matches_fresh(&net, &patterns, &inc);
    }

    #[test]
    fn dead_nodes_are_reconciled_and_resurrected_by_rollback() {
        let (mut net, g1, g2, _g3) = chain_net();
        let patterns = PatternSet::exhaustive(4).unwrap();
        let mut inc = IncrementalSim::new(&net, &patterns);
        let snapshot = net.clone();
        net.replace_with_constant(g1, false);
        let swept = net.propagate_constants();
        assert!(swept > 0, "constant propagation must sweep g1");
        inc.update(&net, &[g2]);
        assert_matches_fresh(&net, &patterns, &inc);
        inc.rollback();
        assert_matches_fresh(&snapshot, &patterns, &inc);
        let fresh = simulate(&snapshot, &patterns);
        assert_eq!(inc.view().node_words(g1), fresh.node_words(g1));
    }

    #[test]
    fn sabotaged_kernel_is_caught_by_the_differential_check() {
        let (mut net, g1, _g2, _g3) = chain_net();
        let patterns = PatternSet::exhaustive(4).unwrap();
        let mut inc = IncrementalSim::new(&net, &patterns);
        // Skip the 2nd recomputation: g1 refreshes, g2 keeps a stale
        // signature even though its fanin changed.
        inc.sabotage_skip_nth_recompute(2);
        net.replace_expr(g1, Expr::or(vec![Expr::lit(0, true), Expr::lit(1, true)]));
        inc.update(&net, &[g1]);
        let fresh = simulate(&net, &patterns);
        let view = inc.view();
        let diverged = net
            .node_ids()
            .any(|id| view.node_words(id) != fresh.node_words(id));
        assert!(
            diverged,
            "the differential check must detect the sabotaged TFO skip"
        );
    }
}
