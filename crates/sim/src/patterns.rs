use std::error::Error;
use std::fmt;

/// SplitMix64 step — the stimulus generator. Dependency-free and
/// deterministic per seed, which is all the paper's uniform random stimulus
/// requires (the exact stream is an implementation detail; every error rate
/// is measured on the same stream within a run).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A set of primary-input stimulus patterns, stored bit-parallel: pattern
/// `p` occupies bit `p % 64` of word `p / 64` of each PI's word vector.
///
/// The paper assumes all PI patterns are equiprobable and uses 10 000 random
/// vectors per simulation run; [`PatternSet::random`] reproduces that setup
/// deterministically from a seed.
#[derive(Clone, Debug)]
pub struct PatternSet {
    num_pis: usize,
    num_patterns: usize,
    /// `words[i]` is the stimulus of PI `i`.
    words: Vec<Vec<u64>>,
}

/// Error returned when an exhaustive pattern set would be too large.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExhaustiveTooLarge {
    /// The requested PI count.
    pub num_pis: usize,
}

impl fmt::Display for ExhaustiveTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exhaustive pattern set over {} inputs exceeds the supported maximum of {} inputs",
            self.num_pis,
            PatternSet::MAX_EXHAUSTIVE_PIS
        )
    }
}

impl Error for ExhaustiveTooLarge {}

impl PatternSet {
    /// The largest PI count for which [`PatternSet::exhaustive`] is allowed.
    pub const MAX_EXHAUSTIVE_PIS: usize = 22;

    /// Generates `num_patterns` uniformly random patterns from `seed`.
    ///
    /// The count is rounded **up** to a multiple of 64 so every word is
    /// fully populated (the paper's 10 000 becomes 10 048; see
    /// [`crate::DEFAULT_NUM_PATTERNS`]).
    pub fn random(num_pis: usize, num_patterns: usize, seed: u64) -> Self {
        let words_per_pi = num_patterns.div_ceil(64).max(1);
        let mut state = seed ^ 0xA15_5EED_5EED_A155;
        let words = (0..num_pis)
            .map(|_| (0..words_per_pi).map(|_| splitmix64(&mut state)).collect())
            .collect();
        PatternSet {
            num_pis,
            num_patterns: words_per_pi * 64,
            words,
        }
    }

    /// Generates all `2^num_pis` patterns.
    ///
    /// # Errors
    ///
    /// Returns [`ExhaustiveTooLarge`] when `num_pis` exceeds
    /// [`PatternSet::MAX_EXHAUSTIVE_PIS`].
    pub fn exhaustive(num_pis: usize) -> Result<Self, ExhaustiveTooLarge> {
        if num_pis > Self::MAX_EXHAUSTIVE_PIS {
            return Err(ExhaustiveTooLarge { num_pis });
        }
        let num_patterns = 1usize << num_pis;
        let words_per_pi = num_patterns.div_ceil(64).max(1);
        let mut words = vec![vec![0u64; words_per_pi]; num_pis];
        for p in 0..num_patterns {
            for (i, w) in words.iter_mut().enumerate() {
                if p >> i & 1 == 1 {
                    w[p / 64] |= 1u64 << (p % 64);
                }
            }
        }
        Ok(PatternSet {
            num_pis,
            num_patterns,
            words,
        })
    }

    /// Builds a pattern set from explicit PI vectors (bit `i` of each vector
    /// drives PI `i`) — for application-derived, non-uniform workloads. The
    /// paper assumes uniform inputs; real error-tolerant applications often
    /// have skewed input distributions, and every error-rate measurement in
    /// this crate is then taken *under that workload*.
    ///
    /// `num_patterns()` is exactly `vectors.len()`: a partial final word is
    /// padded for storage by repeating the final vector, but the padding
    /// bits sit above [`PatternSet::tail_mask`] and are excluded from every
    /// count and probability. (Earlier revisions rounded the pattern count
    /// up to a multiple of 64, silently counting the padding.)
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or `num_pis > 64`.
    pub fn from_vectors(num_pis: usize, vectors: &[u64]) -> Self {
        assert!(!vectors.is_empty(), "workload must contain vectors");
        assert!(num_pis <= 64, "explicit vectors are limited to 64 PIs");
        let num_patterns = vectors.len();
        let words_per_pi = num_patterns.div_ceil(64);
        let mut words = vec![vec![0u64; words_per_pi]; num_pis];
        let last = *vectors.last().expect("non-empty"); // lint:allow(panic): internal invariant; the message states it
        for p in 0..words_per_pi * 64 {
            let v = vectors.get(p).copied().unwrap_or(last);
            for (i, w) in words.iter_mut().enumerate() {
                if v >> i & 1 == 1 {
                    w[p / 64] |= 1u64 << (p % 64);
                }
            }
        }
        PatternSet {
            num_pis,
            num_patterns,
            words,
        }
    }

    /// Number of primary inputs the set drives.
    #[inline]
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }

    /// Number of patterns in the set.
    #[inline]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Number of 64-bit words per signal.
    #[inline]
    pub fn words_per_signal(&self) -> usize {
        self.num_patterns.div_ceil(64).max(1)
    }

    /// Mask selecting the valid pattern bits of the last word.
    #[inline]
    pub fn tail_mask(&self) -> u64 {
        let rem = self.num_patterns % 64;
        if rem == 0 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }

    /// The stimulus words of PI `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_pis()`.
    pub fn pi_words(&self, i: usize) -> &[u64] {
        &self.words[i]
    }

    /// The value of PI `i` under pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `p` is out of range.
    pub fn pi_value(&self, i: usize, p: usize) -> bool {
        assert!(p < self.num_patterns, "pattern index out of range");
        self.words[i][p / 64] >> (p % 64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = PatternSet::random(4, 256, 7);
        let b = PatternSet::random(4, 256, 7);
        let c = PatternSet::random(4, 256, 8);
        assert_eq!(a.pi_words(2), b.pi_words(2));
        assert_ne!(a.pi_words(2), c.pi_words(2));
    }

    #[test]
    fn random_rounds_up_to_words() {
        let p = PatternSet::random(2, 100, 1);
        assert_eq!(p.num_patterns(), 128);
        assert_eq!(p.words_per_signal(), 2);
        let d = PatternSet::random(3, 10_000, 1);
        assert_eq!(d.num_patterns(), crate::DEFAULT_NUM_PATTERNS);
    }

    #[test]
    fn exhaustive_enumerates_all() {
        let p = PatternSet::exhaustive(3).unwrap();
        assert_eq!(p.num_patterns(), 8);
        let mut seen = [false; 8];
        for m in 0..8 {
            let mut idx = 0usize;
            for i in 0..3 {
                if p.pi_value(i, m) {
                    idx |= 1 << i;
                }
            }
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exhaustive_small_counts() {
        let p = PatternSet::exhaustive(0).unwrap();
        assert_eq!(p.num_patterns(), 1);
        let p = PatternSet::exhaustive(7).unwrap();
        assert_eq!(p.num_patterns(), 128);
        assert_eq!(p.words_per_signal(), 2);
    }

    #[test]
    fn exhaustive_too_large_is_error() {
        let e = PatternSet::exhaustive(23).unwrap_err();
        assert_eq!(e.num_pis, 23);
        assert!(e.to_string().contains("23"));
    }

    #[test]
    fn from_vectors_replays_the_workload() {
        let vectors: Vec<u64> = (0..64).map(|i| i * 3 % 8).collect();
        let p = PatternSet::from_vectors(3, &vectors);
        assert_eq!(p.num_patterns(), 64);
        for (idx, &v) in vectors.iter().enumerate() {
            for i in 0..3 {
                assert_eq!(p.pi_value(i, idx), v >> i & 1 == 1, "vec {idx} pi {i}");
            }
        }
    }

    #[test]
    fn from_vectors_keeps_the_exact_pattern_count() {
        let p = PatternSet::from_vectors(2, &[0b01, 0b10, 0b11]);
        assert_eq!(p.num_patterns(), 3);
        assert_eq!(p.words_per_signal(), 1);
        // Only the three real patterns are valid; storage padding above the
        // tail mask must never be observable.
        assert_eq!(p.tail_mask(), 0b111);
        assert!(p.pi_value(0, 0) && p.pi_value(1, 1));
    }

    #[test]
    fn skewed_workload_changes_error_rates() {
        use crate::error_rate;
        use als_logic::{Cover, Cube};
        use als_network::Network;
        // golden y = a·b, approx y = a: differs only when a=1, b=0.
        let mut golden = Network::new("g");
        let a = golden.add_pi("a");
        let b = golden.add_pi("b");
        let y = golden.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
        );
        golden.add_po("y", y);
        let mut approx = golden.clone();
        approx.replace_expr(y, als_logic::Expr::lit(0, true));
        // Workload A: the distinguishing vector never occurs.
        let wl_a = PatternSet::from_vectors(2, &vec![0b11; 64]);
        assert_eq!(error_rate(&golden, &approx, &wl_a), 0.0);
        // Workload B: it always occurs.
        let wl_b = PatternSet::from_vectors(2, &vec![0b01; 64]);
        assert_eq!(error_rate(&golden, &approx, &wl_b), 1.0);
    }

    #[test]
    fn tail_mask() {
        assert_eq!(PatternSet::exhaustive(2).unwrap().tail_mask(), 0b1111);
        assert_eq!(PatternSet::exhaustive(6).unwrap().tail_mask(), u64::MAX);
    }
}
