use crate::SimResult;
use als_network::NodeId;

/// A borrowed, read-only view of a set of simulated signatures — either a
/// [`SimResult`] or the current state of an
/// [`IncrementalSim`](crate::IncrementalSim).
///
/// `SimView` is `Copy` and (being a shared borrow of plain data) `Send +
/// Sync`, so one simulation run can be fanned out across scoped worker
/// threads without cloning the signature words: every worker receives the
/// same view by value and reads the shared signatures concurrently. This is
/// the §3.2 "one simulation run serves every consumer" idea extended across
/// threads.
///
/// The backing storage upholds the canonical-tail invariant (unused bits of
/// each final word are zero), so signature equality is plain word equality.
#[derive(Clone, Copy, Debug)]
pub struct SimView<'a> {
    pub(crate) num_patterns: usize,
    pub(crate) words_per_signal: usize,
    pub(crate) tail_mask: u64,
    /// Flat signature arena; node `id` occupies
    /// `words[id.index() * words_per_signal ..][..words_per_signal]`.
    pub(crate) words: &'a [u64],
    /// Which arena slots hold a signature (dead slots are tombstones).
    pub(crate) live: &'a [bool],
}

impl<'a> SimView<'a> {
    /// Number of simulated patterns.
    #[inline]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Number of words per signal.
    #[inline]
    pub fn words_per_signal(&self) -> usize {
        self.words_per_signal
    }

    /// Mask selecting the valid bits of the final word.
    #[inline]
    pub fn tail_mask(&self) -> u64 {
        self.tail_mask
    }

    /// The signature (value words) of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not live at simulation time.
    pub fn node_words(&self, id: NodeId) -> &'a [u64] {
        assert!(
            self.live.get(id.index()).copied().unwrap_or(false),
            "node {id} was not simulated"
        );
        let base = id.index() * self.words_per_signal;
        &self.words[base..base + self.words_per_signal]
    }

    /// The value of node `id` under pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not simulated or `p` is out of range.
    pub fn node_value(&self, id: NodeId, p: usize) -> bool {
        assert!(p < self.num_patterns, "pattern index out of range");
        self.node_words(id)[p / 64] >> (p % 64) & 1 == 1
    }

    /// How many patterns set node `id` to 1.
    pub fn count_ones(&self, id: NodeId) -> u64 {
        // Tail bits are canonically zero, so a plain popcount is exact.
        self.node_words(id)
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum()
    }

    /// The signal probability of node `id` (fraction of patterns at 1).
    pub fn probability(&self, id: NodeId) -> f64 {
        self.count_ones(id) as f64 / self.num_patterns as f64 // lint:allow(as-cast): counts << 2^52, exact in f64
    }

    /// Whether two nodes have identical signatures over the pattern set.
    pub fn signatures_equal(&self, a: NodeId, b: NodeId) -> bool {
        self.node_words(a) == self.node_words(b)
    }

    /// The number of patterns on which two simulated nodes differ.
    pub fn difference_count(&self, a: NodeId, b: NodeId) -> u64 {
        self.node_words(a)
            .iter()
            .zip(self.node_words(b))
            .map(|(x, y)| u64::from((x ^ y).count_ones()))
            .sum()
    }

    /// [`difference_count`](SimView::difference_count) with adaptive
    /// prefix probing: the scan starts at a `start_words`-word prefix and
    /// doubles its coverage only while the pair could still be *similar
    /// enough* — it stops early once the prefix alone proves both phases
    /// infeasible.
    ///
    /// Both mismatch and match counts are monotone in coverage, so over a
    /// prefix of `c` patterns with `e` mismatches:
    ///
    /// - `e > max_mismatches` already implies the full-width mismatch count
    ///   exceeds `max_mismatches` (same-phase substitution infeasible);
    /// - `c − e > max_matches` already implies the full-width *match* count
    ///   exceeds `max_matches` — and the full match count is exactly the
    ///   inverted-phase mismatch count `N − diff` (inverted substitution
    ///   infeasible). `max_matches: None` marks the inverted phase as
    ///   infeasible from the outset.
    ///
    /// When both hold, the probe returns with `early_exit: true` and a
    /// partial `count`; the caller's accept/reject decision is then
    /// byte-identical to a full scan. Otherwise the scan runs to completion
    /// and `count` is the exact [`difference_count`](Self::difference_count).
    ///
    /// Only full 64-pattern words are counted as covered before the final
    /// word, so the match bound never credits the canonical-zero tail bits
    /// as agreements.
    ///
    /// # Panics
    ///
    /// Panics if either node was not simulated.
    pub fn difference_probe(
        &self,
        a: NodeId,
        b: NodeId,
        max_mismatches: u64,
        max_matches: Option<u64>,
        start_words: usize,
    ) -> DiffProbe {
        let wps = self.words_per_signal;
        let wa = self.node_words(a);
        let wb = self.node_words(b);
        let mut mismatches = 0u64;
        let mut scanned = 0usize;
        let mut end = start_words.clamp(1, wps);
        loop {
            for w in scanned..end {
                mismatches += u64::from((wa[w] ^ wb[w]).count_ones());
            }
            scanned = end;
            if scanned == wps {
                return DiffProbe {
                    count: mismatches,
                    words_scanned: scanned as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                    early_exit: false,
                };
            }
            // Every scanned word is a full 64 patterns (only the final word
            // can be partial, and `scanned < wps` here).
            let covered = (scanned * 64) as u64; // lint:allow(as-cast): usize fits u64 on all supported targets
            let same_feasible = mismatches <= max_mismatches;
            let inv_feasible = max_matches.is_some_and(|mm| covered - mismatches <= mm);
            if !same_feasible && !inv_feasible {
                return DiffProbe {
                    count: mismatches,
                    words_scanned: scanned as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
                    early_exit: true,
                };
            }
            end = (end * 2).min(wps);
        }
    }
}

/// Result of one [`SimView::difference_probe`] scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiffProbe {
    /// Mismatching patterns counted before the scan stopped: the exact
    /// difference count when `early_exit` is false, otherwise a prefix
    /// count that already proves both phases infeasible.
    pub count: u64,
    /// Signature words actually read (per signal).
    pub words_scanned: u64,
    /// Whether the scan stopped at a word prefix.
    pub early_exit: bool,
}

impl SimResult {
    /// A borrowed view suitable for sharing across scoped threads.
    pub fn view(&self) -> SimView<'_> {
        SimView {
            num_patterns: self.num_patterns(),
            words_per_signal: self.words_per_signal(),
            tail_mask: self.tail_mask(),
            words: self.words(),
            live: self.live(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{local_pattern_counts_view, simulate, PatternSet};
    use als_logic::{Cover, Cube};
    use als_network::Network;

    fn and_net() -> (Network, NodeId) {
        let mut net = Network::new("and2");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let y = net.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
        );
        net.add_po("y", y);
        (net, y)
    }

    #[test]
    fn view_mirrors_the_result() {
        let (net, y) = and_net();
        let p = PatternSet::exhaustive(2).unwrap();
        let sim = simulate(&net, &p);
        let view = sim.view();
        assert_eq!(view.num_patterns(), sim.num_patterns());
        assert_eq!(view.count_ones(y), sim.count_ones(y));
        assert_eq!(view.node_words(y), sim.node_words(y));
        assert_eq!(view.probability(y), sim.probability(y));
        let a = net.pis()[0];
        assert_eq!(view.node_value(a, 1), sim.node_value(a, 1));
        assert_eq!(view.difference_count(a, y), sim.difference_count(a, y));
        assert_eq!(view.signatures_equal(y, y), sim.signatures_equal(y, y));
    }

    #[test]
    fn difference_probe_matches_full_scan_and_only_early_exits_soundly() {
        // Two 8-PI signals over 256 patterns (4 words): a PI and a gate.
        let mut net = Network::new("probe");
        let pis: Vec<NodeId> = (0..8).map(|i| net.add_pi(format!("x{i}"))).collect();
        let y = net.add_node(
            "y",
            vec![pis[0], pis[1]],
            Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
        );
        net.add_po("y", y);
        let p = PatternSet::exhaustive(8).unwrap();
        let sim = simulate(&net, &p);
        let view = sim.view();
        let full = view.difference_count(pis[2], y);
        // Unbounded limits: the probe always completes with the exact count.
        let probe = view.difference_probe(pis[2], y, u64::MAX, Some(u64::MAX), 1);
        assert_eq!(
            probe,
            DiffProbe {
                count: full,
                words_scanned: 4,
                early_exit: false
            }
        );
        // Tight limits on a dissimilar pair: early exit from the first word,
        // and the partial count already exceeds the mismatch limit while the
        // match bound is violated too.
        let tight = view.difference_probe(pis[2], y, 3, Some(3), 1);
        assert!(tight.early_exit);
        assert_eq!(tight.words_scanned, 1);
        assert!(tight.count > 3 && 64 - tight.count > 3);
        // A pair similar in the inverted phase is never early-exited by a
        // tight mismatch limit alone.
        let mut inv_net = Network::new("inv");
        let a = inv_net.add_pi("a");
        let filler = inv_net.add_pi("f");
        let na = inv_net.add_node(
            "na",
            vec![a],
            Cover::from_cubes(1, [Cube::from_literals(&[(0, false)]).unwrap()]),
        );
        inv_net.add_po("na", na);
        inv_net.add_po("f", filler);
        let p2 = PatternSet::random(2, 256, 7);
        let s2 = simulate(&inv_net, &p2);
        let v2 = s2.view();
        let inv_probe = v2.difference_probe(a, na, 0, Some(0), 1);
        assert!(!inv_probe.early_exit, "perfect inverse must scan fully");
        assert_eq!(inv_probe.count, 256, "a vs a' differs everywhere");
    }

    #[test]
    fn view_is_shareable_across_scoped_threads() {
        let (net, y) = and_net();
        let p = PatternSet::exhaustive(2).unwrap();
        let sim = simulate(&net, &p);
        let view = sim.view();
        let counts: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(move || view.count_ones(y)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(counts.iter().all(|&c| c == 1));
        let local = local_pattern_counts_view(&net, view, y);
        assert_eq!(local, vec![1, 1, 1, 1]);
    }
}
