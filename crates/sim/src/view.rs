use crate::SimResult;
use als_network::NodeId;

/// A borrowed, read-only view of a set of simulated signatures — either a
/// [`SimResult`] or the current state of an
/// [`IncrementalSim`](crate::IncrementalSim).
///
/// `SimView` is `Copy` and (being a shared borrow of plain data) `Send +
/// Sync`, so one simulation run can be fanned out across scoped worker
/// threads without cloning the signature words: every worker receives the
/// same view by value and reads the shared signatures concurrently. This is
/// the §3.2 "one simulation run serves every consumer" idea extended across
/// threads.
///
/// The backing storage upholds the canonical-tail invariant (unused bits of
/// each final word are zero), so signature equality is plain word equality.
#[derive(Clone, Copy, Debug)]
pub struct SimView<'a> {
    pub(crate) num_patterns: usize,
    pub(crate) words_per_signal: usize,
    pub(crate) tail_mask: u64,
    /// Flat signature arena; node `id` occupies
    /// `words[id.index() * words_per_signal ..][..words_per_signal]`.
    pub(crate) words: &'a [u64],
    /// Which arena slots hold a signature (dead slots are tombstones).
    pub(crate) live: &'a [bool],
}

impl<'a> SimView<'a> {
    /// Number of simulated patterns.
    #[inline]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Number of words per signal.
    #[inline]
    pub fn words_per_signal(&self) -> usize {
        self.words_per_signal
    }

    /// Mask selecting the valid bits of the final word.
    #[inline]
    pub fn tail_mask(&self) -> u64 {
        self.tail_mask
    }

    /// The signature (value words) of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not live at simulation time.
    pub fn node_words(&self, id: NodeId) -> &'a [u64] {
        assert!(
            self.live.get(id.index()).copied().unwrap_or(false),
            "node {id} was not simulated"
        );
        let base = id.index() * self.words_per_signal;
        &self.words[base..base + self.words_per_signal]
    }

    /// The value of node `id` under pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not simulated or `p` is out of range.
    pub fn node_value(&self, id: NodeId, p: usize) -> bool {
        assert!(p < self.num_patterns, "pattern index out of range");
        self.node_words(id)[p / 64] >> (p % 64) & 1 == 1
    }

    /// How many patterns set node `id` to 1.
    pub fn count_ones(&self, id: NodeId) -> u64 {
        // Tail bits are canonically zero, so a plain popcount is exact.
        self.node_words(id)
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum()
    }

    /// The signal probability of node `id` (fraction of patterns at 1).
    pub fn probability(&self, id: NodeId) -> f64 {
        self.count_ones(id) as f64 / self.num_patterns as f64 // lint:allow(as-cast): counts << 2^52, exact in f64
    }

    /// Whether two nodes have identical signatures over the pattern set.
    pub fn signatures_equal(&self, a: NodeId, b: NodeId) -> bool {
        self.node_words(a) == self.node_words(b)
    }

    /// The number of patterns on which two simulated nodes differ.
    pub fn difference_count(&self, a: NodeId, b: NodeId) -> u64 {
        self.node_words(a)
            .iter()
            .zip(self.node_words(b))
            .map(|(x, y)| u64::from((x ^ y).count_ones()))
            .sum()
    }
}

impl SimResult {
    /// A borrowed view suitable for sharing across scoped threads.
    pub fn view(&self) -> SimView<'_> {
        SimView {
            num_patterns: self.num_patterns(),
            words_per_signal: self.words_per_signal(),
            tail_mask: self.tail_mask(),
            words: self.words(),
            live: self.live(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{local_pattern_counts_view, simulate, PatternSet};
    use als_logic::{Cover, Cube};
    use als_network::Network;

    fn and_net() -> (Network, NodeId) {
        let mut net = Network::new("and2");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let y = net.add_node(
            "y",
            vec![a, b],
            Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
        );
        net.add_po("y", y);
        (net, y)
    }

    #[test]
    fn view_mirrors_the_result() {
        let (net, y) = and_net();
        let p = PatternSet::exhaustive(2).unwrap();
        let sim = simulate(&net, &p);
        let view = sim.view();
        assert_eq!(view.num_patterns(), sim.num_patterns());
        assert_eq!(view.count_ones(y), sim.count_ones(y));
        assert_eq!(view.node_words(y), sim.node_words(y));
        assert_eq!(view.probability(y), sim.probability(y));
        let a = net.pis()[0];
        assert_eq!(view.node_value(a, 1), sim.node_value(a, 1));
        assert_eq!(view.difference_count(a, y), sim.difference_count(a, y));
        assert_eq!(view.signatures_equal(y, y), sim.signatures_equal(y, y));
    }

    #[test]
    fn view_is_shareable_across_scoped_threads() {
        let (net, y) = and_net();
        let p = PatternSet::exhaustive(2).unwrap();
        let sim = simulate(&net, &p);
        let view = sim.view();
        let counts: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(move || view.count_ones(y)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(counts.iter().all(|&c| c == 1));
        let local = local_pattern_counts_view(&net, view, y);
        assert_eq!(local, vec![1, 1, 1, 1]);
    }
}
