//! Lane-widened word kernels for the simulation hot path.
//!
//! Every routine processes its slices in fixed [`LANES`]-word chunks with an
//! inner fixed-trip-count loop plus a scalar remainder. The shapes are chosen
//! so the optimizer can autovectorize each chunk to one 256-bit operation
//! (4 × `u64`) without any `unsafe` — the workspace keeps
//! `#![forbid(unsafe_code)]`, and all indexing is through `chunks_exact`,
//! whose chunk length the compiler knows statically.
//!
//! Correctness does not depend on vectorization: each helper is a plain
//! bitwise fold, bit-identical to the scalar loop it replaces (the
//! `chunked_kernel` differential suite pins this against an in-test scalar
//! reference).

/// Words per chunk: 4 × `u64` = one 256-bit lane.
pub(crate) const LANES: usize = 4;

/// `term[i] &= fanin[i]` (positive phase) or `term[i] &= !fanin[i]`
/// (negative phase), over equal-length slices.
#[inline]
pub(crate) fn and_phase(term: &mut [u64], fanin: &[u64], phase: bool) {
    debug_assert_eq!(term.len(), fanin.len());
    let mut t = term.chunks_exact_mut(LANES);
    let mut f = fanin.chunks_exact(LANES);
    if phase {
        for (tc, fc) in (&mut t).zip(&mut f) {
            for k in 0..LANES {
                tc[k] &= fc[k];
            }
        }
        for (tw, fw) in t.into_remainder().iter_mut().zip(f.remainder()) {
            *tw &= *fw;
        }
    } else {
        for (tc, fc) in (&mut t).zip(&mut f) {
            for k in 0..LANES {
                tc[k] &= !fc[k];
            }
        }
        for (tw, fw) in t.into_remainder().iter_mut().zip(f.remainder()) {
            *tw &= !*fw;
        }
    }
}

/// `out[i] |= term[i]`, over equal-length slices.
#[inline]
pub(crate) fn or_accumulate(out: &mut [u64], term: &[u64]) {
    debug_assert_eq!(out.len(), term.len());
    let mut o = out.chunks_exact_mut(LANES);
    let mut t = term.chunks_exact(LANES);
    for (oc, tc) in (&mut o).zip(&mut t) {
        for k in 0..LANES {
            oc[k] |= tc[k];
        }
    }
    for (ow, tw) in o.into_remainder().iter_mut().zip(t.remainder()) {
        *ow |= *tw;
    }
}

/// Whether two equal-length slices differ in any word, checking one chunk at
/// a time (the early-exit compare of the incremental engine: an unchanged
/// signature is detected after at most one pass, usually much sooner).
#[inline]
pub(crate) fn words_differ(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (x, y) in (&mut ac).zip(&mut bc) {
        let mut d = 0u64;
        for k in 0..LANES {
            d |= x[k] ^ y[k];
        }
        if d != 0 {
            return true;
        }
    }
    ac.remainder()
        .iter()
        .zip(bc.remainder())
        .any(|(x, y)| x != y)
}

/// `acc[i] |= x[i] ^ y[i]`, over equal-length slices (the any-PO-differs
/// accumulator of the error-rate measurement).
#[inline]
pub(crate) fn xor_or_accumulate(acc: &mut [u64], x: &[u64], y: &[u64]) {
    debug_assert_eq!(acc.len(), x.len());
    debug_assert_eq!(acc.len(), y.len());
    let mut a = acc.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    let mut yc = y.chunks_exact(LANES);
    for ((ac, xk), yk) in (&mut a).zip(&mut xc).zip(&mut yc) {
        for k in 0..LANES {
            ac[k] |= xk[k] ^ yk[k];
        }
    }
    for ((aw, xw), yw) in a
        .into_remainder()
        .iter_mut()
        .zip(xc.remainder())
        .zip(yc.remainder())
    {
        *aw |= *xw ^ *yw;
    }
}

/// Total popcount of a slice whose final word is first masked with
/// `last_mask` (the canonical-tail rule: callers pass the tail mask when the
/// slice ends at the last word of a signature, `u64::MAX` otherwise).
#[inline]
pub(crate) fn popcount_masked(words: &[u64], last_mask: u64) -> u64 {
    let Some((&last, body)) = words.split_last() else {
        return 0;
    };
    let mut total = 0u64;
    let mut chunks = body.chunks_exact(LANES);
    for c in &mut chunks {
        let mut sub = 0u64;
        for k in 0..LANES {
            sub += u64::from(c[k].count_ones());
        }
        total += sub;
    }
    for w in chunks.remainder() {
        total += u64::from(w.count_ones());
    }
    total + u64::from((last & last_mask).count_ones())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(n: usize, seed: u64) -> Vec<u64> {
        // Deterministic splitmix64 stream; no RNG dependency needed here.
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    /// Every helper must agree with its one-line scalar definition on
    /// lengths around the chunk boundary (0, 1, LANES-1, LANES, LANES+1,
    /// several chunks plus remainder).
    #[test]
    fn chunked_helpers_match_scalar_folds() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 11, 16, 129] {
            let a = words(n, 1);
            let b = words(n, 2);
            for phase in [false, true] {
                let mut chunked = a.clone();
                and_phase(&mut chunked, &b, phase);
                let scalar: Vec<u64> = a
                    .iter()
                    .zip(&b)
                    .map(|(x, y)| x & if phase { *y } else { !*y })
                    .collect();
                assert_eq!(chunked, scalar, "and_phase n={n} phase={phase}");
            }
            let mut chunked = a.clone();
            or_accumulate(&mut chunked, &b);
            let scalar: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x | y).collect();
            assert_eq!(chunked, scalar, "or_accumulate n={n}");

            let mut chunked = a.clone();
            xor_or_accumulate(&mut chunked, &b, &a);
            let scalar: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x | (x ^ y)).collect();
            assert_eq!(chunked, scalar, "xor_or_accumulate n={n}");

            assert!(!words_differ(&a, &a.clone()), "n={n}");
            if n > 0 {
                let mut c = a.clone();
                for flip in [0, n / 2, n - 1] {
                    c.clone_from(&a);
                    c[flip] ^= 1 << (flip % 64);
                    assert!(words_differ(&a, &c), "n={n} flip={flip}");
                }
                let mask = 0x00FF_FFFF_FFFF_FFFF;
                let scalar: u64 = a[..n - 1]
                    .iter()
                    .map(|w| u64::from(w.count_ones()))
                    .sum::<u64>()
                    + u64::from((a[n - 1] & mask).count_ones());
                assert_eq!(popcount_masked(&a, mask), scalar, "popcount n={n}");
            } else {
                assert_eq!(popcount_masked(&a, u64::MAX), 0);
            }
        }
    }
}
