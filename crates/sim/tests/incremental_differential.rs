//! Differential verification of the incremental resimulation kernel.
//!
//! Property: after *every* `IncrementalSim::update` and after *every*
//! `rollback`, the incremental signatures are word-for-word identical to a
//! fresh full `simulate` of the same network. Networks and rewrite chains
//! are generated from the deterministic proptest RNG, so failures reproduce.
//!
//! Non-vacuity is asserted at the end of the chain property: across the
//! suite at least one early exit (a recomputed-but-identical frontier) and
//! at least one multi-level TFO propagation must have occurred, so the
//! property cannot silently degenerate into "nothing ever changed".
//!
//! Falsifiability of this check itself is proven by the seeded-mutant unit
//! test `sabotaged_kernel_is_caught_by_the_differential_check` inside
//! `src/incremental.rs` (the sabotage hook is `#[cfg(test)]`, invisible
//! here): a kernel that skips one TFO node fails the identical comparison.

use als_logic::{Cover, Cube, Expr};
use als_network::{Network, NodeId};
use als_sim::{simulate, IncrementalSim, PatternSet};
use proptest::{seed_from_name, TestRng};

/// The differential check: every live node of `net` must have identical
/// words in the incremental arena and in a fresh simulation.
fn assert_view_matches(net: &Network, patterns: &PatternSet, inc: &IncrementalSim, what: &str) {
    let fresh = simulate(net, patterns);
    let view = inc.view();
    for id in net.node_ids() {
        assert_eq!(
            view.node_words(id),
            fresh.node_words(id),
            "{what}: node {id} diverged from fresh simulation"
        );
    }
}

fn random_cover(rng: &mut TestRng, k: usize) -> Cover {
    let num_cubes = 1 + rng.below(2) as usize;
    let cubes: Vec<Cube> = (0..num_cubes)
        .map(|_| {
            let mut lits: Vec<(usize, bool)> = Vec::new();
            for v in 0..k {
                if rng.below(2) == 0 {
                    lits.push((v, rng.below(2) == 0));
                }
            }
            if lits.is_empty() {
                lits.push((rng.below(k as u64) as usize, rng.below(2) == 0));
            }
            Cube::from_literals(&lits).expect("distinct vars by construction")
        })
        .collect();
    Cover::from_cubes(k, cubes)
}

/// A random 2–4-PI, 3–12-node network whose exhaustive pattern count is a
/// non-multiple of 64 (4/8/16 patterns), so the partial tail word is always
/// in play.
fn random_network(rng: &mut TestRng, case: u64) -> Network {
    let num_pis = 2 + rng.below(3) as usize;
    let num_nodes = 3 + rng.below(10) as usize;
    let mut net = Network::new(format!("rand{case}"));
    let mut signals: Vec<NodeId> = (0..num_pis).map(|i| net.add_pi(format!("i{i}"))).collect();
    for n in 0..num_nodes {
        let k = 1 + rng.below(3.min(signals.len() as u64)) as usize;
        let mut fanins: Vec<NodeId> = Vec::new();
        while fanins.len() < k {
            let s = signals[rng.below(signals.len() as u64) as usize];
            if !fanins.contains(&s) {
                fanins.push(s);
            }
        }
        let cover = random_cover(rng, k);
        let id = net.add_node(format!("n{n}"), fanins, cover);
        signals.push(id);
    }
    let last = *signals.last().expect("nodes were added");
    net.add_po("f0", last);
    net.add_po("f1", signals[signals.len() - 2]);
    net
}

/// Applies one random single-node rewrite and returns the dirty node, or
/// `None` if the network has no rewritable node left.
fn apply_random_rewrite(rng: &mut TestRng, net: &mut Network) -> Option<NodeId> {
    let internals: Vec<NodeId> = net.internal_ids().collect();
    if internals.is_empty() {
        return None;
    }
    let id = internals[rng.below(internals.len() as u64) as usize];
    let k = net.node(id).fanins().len();
    if k == 0 || rng.below(4) == 0 {
        net.replace_with_constant(id, rng.below(2) == 0);
    } else {
        let expr = random_expr(rng, k);
        net.replace_expr(id, expr);
    }
    Some(id)
}

fn random_expr(rng: &mut TestRng, k: usize) -> Expr {
    let v0 = rng.below(k as u64) as usize;
    let p0 = rng.below(2) == 0;
    if k == 1 || rng.below(3) == 0 {
        return Expr::lit(v0, p0);
    }
    let mut v1 = rng.below(k as u64) as usize;
    if v1 == v0 {
        v1 = (v1 + 1) % k;
    }
    let p1 = rng.below(2) == 0;
    if rng.below(2) == 0 {
        Expr::and(vec![Expr::lit(v0, p0), Expr::lit(v1, p1)])
    } else {
        Expr::or(vec![Expr::lit(v0, p0), Expr::lit(v1, p1)])
    }
}

/// The main chain property: random network, then a chain of random rewrites
/// with incremental updates, random rollbacks and occasional constant
/// propagation — the incremental arena must match a fresh simulation at
/// every observation point.
#[test]
fn incremental_matches_fresh_simulation_over_random_rewrite_chains() {
    let mut rng = TestRng::new(seed_from_name(
        "incremental_matches_fresh_simulation_over_random_rewrite_chains",
    ));
    let mut total_early_exits = 0u64;
    let mut total_multi_level = 0u64;
    for case in 0..48 {
        let mut net = random_network(&mut rng, case);
        let patterns = PatternSet::exhaustive(net.num_pis()).expect("≤ 4 PIs");
        let mut inc = IncrementalSim::new(&net, &patterns);
        assert_view_matches(&net, &patterns, &inc, "after construction");
        for _step in 0..5 {
            let snapshot = net.clone();
            // Sometimes a batch of two rewrites under one update, mirroring
            // the multi-selection engine; usually a single rewrite.
            let mut dirty = Vec::new();
            match apply_random_rewrite(&mut rng, &mut net) {
                Some(d) => dirty.push(d),
                None => break,
            }
            if rng.below(4) == 0 {
                if let Some(d) = apply_random_rewrite(&mut rng, &mut net) {
                    if !dirty.contains(&d) {
                        dirty.push(d);
                    }
                }
            }
            let delta = inc.update(&net, &dirty);
            total_early_exits += delta.skipped_early_exit;
            if delta.dirty == 1 && delta.resim_nodes >= 2 {
                total_multi_level += 1;
            }
            assert_view_matches(&net, &patterns, &inc, "after update");
            if rng.below(2) == 0 {
                inc.rollback();
                net = snapshot;
                assert_view_matches(&net, &patterns, &inc, "after rollback");
            } else {
                inc.commit();
                if rng.below(4) == 0 {
                    // Constant propagation rewrites surviving users
                    // function-preservingly and sweeps dead nodes: liveness
                    // reconciliation alone must keep the arena consistent.
                    net.propagate_constants();
                    inc.update(&net, &[]);
                    assert_view_matches(&net, &patterns, &inc, "after propagate_constants");
                    inc.commit();
                }
            }
        }
    }
    assert!(
        total_early_exits > 0,
        "vacuous suite: no early exit ever occurred"
    );
    assert!(
        total_multi_level > 0,
        "vacuous suite: no multi-level TFO propagation ever occurred"
    );
}

/// Ranged updates: bringing the arena up to date over doubling word ranges
/// (`[0,1) [1,2) [2,4) …`) must land on exactly the same words as one full
/// `update`, including across the two-phase constant-propagation protocol
/// and across mid-span rollbacks. This is the adaptive-sampling access
/// pattern, divorced from the sampler's decision logic.
#[test]
fn ranged_updates_cover_to_the_same_arena_as_full_updates() {
    let mut rng = TestRng::new(seed_from_name(
        "ranged_updates_cover_to_the_same_arena_as_full_updates",
    ));
    let mut ranged_rounds = 0u64;
    for case in 0..32 {
        let mut net = random_network(&mut rng, case);
        // ~200 patterns → 4 words per signal, with a partial tail word, so
        // the doubling schedule has real multi-round work.
        let vectors: Vec<u64> = (0..200).map(|_| rng.below(u64::MAX)).collect();
        let patterns = PatternSet::from_vectors(net.num_pis(), &vectors);
        let wps = 4;
        let mut inc = IncrementalSim::new(&net, &patterns);
        assert_eq!(inc.words_per_signal(), wps);
        for _step in 0..4 {
            let snapshot = net.clone();
            let mut dirty = Vec::new();
            match apply_random_rewrite(&mut rng, &mut net) {
                Some(d) => dirty.push(d),
                None => break,
            }
            // Doubling schedule over [0, wps); the two-phase constant
            // propagation (mirroring the multi/sasimi engines) runs after
            // full coverage, as the ranged contract requires, on half the
            // steps.
            let mut start = 0usize;
            let mut end = 1usize;
            let mut words_done = 0u64;
            while start < wps {
                let delta = inc.update_range(&net, &dirty, start, end);
                words_done += delta.words_simulated;
                start = end;
                end = (end * 2).min(wps);
                ranged_rounds += 1;
            }
            if rng.below(2) == 0 {
                net.propagate_constants();
                inc.update(&net, &[]);
            }
            assert!(words_done > 0, "case {case}: ranged rounds did no work");
            assert_view_matches(&net, &patterns, &inc, "after ranged coverage");
            if rng.below(3) == 0 {
                inc.rollback();
                net = snapshot;
                assert_view_matches(&net, &patterns, &inc, "after ranged rollback");
            } else {
                inc.commit();
            }
        }
    }
    assert!(
        ranged_rounds > 32,
        "vacuous: ranged schedule never multi-round"
    );
}

/// A mid-span rollback after covering only a *prefix* of the word range
/// must still restore the pre-span arena exactly (the undo log spans
/// partial-coverage rounds too).
#[test]
fn rollback_after_partial_range_coverage_restores_everything() {
    let mut rng = TestRng::new(seed_from_name(
        "rollback_after_partial_range_coverage_restores_everything",
    ));
    for case in 0..16 {
        let mut net = random_network(&mut rng, case);
        let vectors: Vec<u64> = (0..200).map(|_| rng.below(u64::MAX)).collect();
        let patterns = PatternSet::from_vectors(net.num_pis(), &vectors);
        let mut inc = IncrementalSim::new(&net, &patterns);
        let snapshot = net.clone();
        let Some(d) = apply_random_rewrite(&mut rng, &mut net) else {
            continue;
        };
        // Cover only the first word, then abandon the trial.
        inc.update_range(&net, &[d], 0, 1);
        inc.rollback();
        net = snapshot;
        assert_view_matches(&net, &patterns, &inc, "after partial-coverage rollback");
        // The engine must remain fully usable for a subsequent normal trial.
        if let Some(d2) = apply_random_rewrite(&mut rng, &mut net) {
            inc.update(&net, &[d2]);
            assert_view_matches(&net, &patterns, &inc, "after follow-up full update");
            inc.commit();
        }
    }
}

/// SASIMI-style substitution (a freshly added inverter replacing a node)
/// driven through ranged rounds: the new slot is completed range by range
/// via the span tracking, and rollback resurrects the swept node.
#[test]
fn substitution_through_ranged_rounds_matches_fresh() {
    let mut rng = TestRng::new(seed_from_name(
        "substitution_through_ranged_rounds_matches_fresh",
    ));
    let mut exercised = 0u64;
    for case in 0..16 {
        let mut net = random_network(&mut rng, case);
        let vectors: Vec<u64> = (0..200).map(|_| rng.below(u64::MAX)).collect();
        let patterns = PatternSet::from_vectors(net.num_pis(), &vectors);
        let wps = 4;
        let mut inc = IncrementalSim::new(&net, &patterns);
        let fanouts = net.fanouts();
        let internals: Vec<NodeId> = net.internal_ids().collect();
        let Some(&target) = internals.iter().find(|id| !fanouts[id.index()].is_empty()) else {
            continue;
        };
        let tfo = net.tfo_mask(target);
        let Some(source) = net.node_ids().find(|s| *s != target && !tfo[s.index()]) else {
            continue;
        };
        let snapshot = net.clone();
        let users = fanouts[target.index()].clone();
        let inv = net.add_node(
            "trial_inv",
            vec![source],
            Cover::from_cubes(
                1,
                [Cube::from_literals(&[(0, false)]).expect("one literal")],
            ),
        );
        net.substitute(target, inv);
        let mut start = 0usize;
        let mut end = 1usize;
        while start < wps {
            inc.update_range(&net, &users, start, end);
            start = end;
            end = (end * 2).min(wps);
        }
        net.propagate_constants();
        inc.update(&net, &[]);
        assert_view_matches(&net, &patterns, &inc, "after ranged substitution");
        inc.rollback();
        net = snapshot;
        assert_view_matches(&net, &patterns, &inc, "after ranged substitution rollback");
        exercised += 1;
    }
    assert!(exercised > 0, "vacuous: no ranged substitution trial ran");
}

/// SASIMI-style trial: substitute a node by a freshly added inverter. This
/// exercises arena growth (new slot), newly-live resimulation, dead-slot
/// reconciliation (the substituted node is swept) and rollback across all
/// three at once.
#[test]
fn substitution_with_a_new_inverter_matches_fresh() {
    let mut rng = TestRng::new(seed_from_name(
        "substitution_with_a_new_inverter_matches_fresh",
    ));
    let mut exercised = 0u64;
    for case in 0..24 {
        let mut net = random_network(&mut rng, case);
        let patterns = PatternSet::exhaustive(net.num_pis()).expect("≤ 4 PIs");
        let mut inc = IncrementalSim::new(&net, &patterns);
        let internals: Vec<NodeId> = net.internal_ids().collect();
        // Pick a target with at least one fanout (so the dirty set is
        // non-empty) and a source outside its TFO (acyclicity).
        let fanouts = net.fanouts();
        let Some(&target) = internals.iter().find(|id| !fanouts[id.index()].is_empty()) else {
            continue;
        };
        let tfo = net.tfo_mask(target);
        let Some(source) = net.node_ids().find(|s| *s != target && !tfo[s.index()]) else {
            continue;
        };
        let snapshot = net.clone();
        let users = fanouts[target.index()].clone();
        let inv = net.add_node(
            "trial_inv",
            vec![source],
            Cover::from_cubes(
                1,
                [Cube::from_literals(&[(0, false)]).expect("one literal")],
            ),
        );
        net.substitute(target, inv);
        inc.update(&net, &users);
        assert_view_matches(&net, &patterns, &inc, "after substitution");
        inc.rollback();
        net = snapshot;
        assert_view_matches(&net, &patterns, &inc, "after substitution rollback");
        exercised += 1;
    }
    assert!(exercised > 0, "vacuous: no substitution trial ran");
}
