//! Differential verification of the lane-widened (chunked) simulation
//! kernel against an in-test scalar reference.
//!
//! The production kernel processes signatures in fixed 4×`u64` chunks
//! (written to autovectorize); this suite re-implements the pre-chunking
//! scalar kernel — one word at a time, straight-line — and pins the two
//! word-for-word:
//!
//! * on deterministic random networks at every tail shape that matters
//!   (1/63/64/65/127/128/256 patterns: sub-word, word-boundary-adjacent,
//!   multi-word, and chunk-boundary counts);
//! * on all twelve registry circuits of the paper's Table 3;
//! * against the per-pattern `Network::eval` oracle, so both kernels are
//!   anchored to the semantic ground truth, not merely to each other.

use als_circuits::registry::all_benchmarks;
use als_logic::{Cover, Cube};
use als_network::{Network, NodeId};
use als_sim::{error_rate_from_view, po_words, simulate, PatternSet};
use proptest::{seed_from_name, TestRng};

/// The scalar reference kernel: a full flat-arena simulation computed with
/// plain one-word-at-a-time loops (the exact shape the chunked kernel
/// replaced). Returns `(words, words_per_signal)`.
fn scalar_simulate(net: &Network, patterns: &PatternSet) -> (Vec<u64>, usize) {
    let wps = patterns.words_per_signal();
    let tail_mask = patterns.tail_mask();
    let arena = net.node_ids().map(NodeId::index).max().map_or(0, |m| m + 1);
    let mut words = vec![0u64; arena * wps];
    for (i, &pi) in net.pis().iter().enumerate() {
        let base = pi.index() * wps;
        words[base..base + wps].copy_from_slice(patterns.pi_words(i));
        if let Some(last) = words[base..base + wps].last_mut() {
            *last &= tail_mask;
        }
    }
    let mut term = vec![0u64; wps];
    for id in net.topo_order() {
        let node = net.node(id);
        if node.is_pi() {
            continue;
        }
        let base = id.index() * wps;
        let mut out = vec![0u64; wps];
        for cube in node.cover().cubes() {
            term.fill(u64::MAX);
            for (var, phase) in cube.literals() {
                let fbase = node.fanins()[var].index() * wps;
                for w in 0..wps {
                    let f = words[fbase + w];
                    term[w] &= if phase { f } else { !f };
                }
            }
            for w in 0..wps {
                out[w] |= term[w];
            }
        }
        if let Some(last) = out.last_mut() {
            *last &= tail_mask;
        }
        words[base..base + wps].copy_from_slice(&out);
    }
    (words, wps)
}

/// Asserts the production (chunked) simulation is word-identical to the
/// scalar reference on every node of `net`, and spot-checks both against
/// the per-pattern `Network::eval` oracle.
fn assert_chunked_matches_scalar(net: &Network, patterns: &PatternSet, what: &str) {
    let sim = simulate(net, patterns);
    let (scalar, wps) = scalar_simulate(net, patterns);
    for id in net.node_ids() {
        let base = id.index() * wps;
        assert_eq!(
            sim.node_words(id),
            &scalar[base..base + wps],
            "{what}: node {id} chunked ≠ scalar"
        );
    }
    // Anchor to ground truth on a handful of patterns (every pattern for
    // small sets): the signatures must agree with gate-level evaluation.
    let n = patterns.num_patterns();
    let num_pis = net.num_pis();
    if num_pis <= 16 {
        for p in (0..n).step_by(1 + n / 64) {
            let pis: Vec<bool> = (0..num_pis).map(|i| patterns.pi_value(i, p)).collect();
            let outs = net.eval(&pis);
            for ((_, d), want) in net.pos().iter().zip(outs) {
                assert_eq!(sim.node_value(*d, p), want, "{what}: PO {d} pattern {p}");
            }
        }
    }
}

fn random_cover(rng: &mut TestRng, k: usize) -> Cover {
    let num_cubes = 1 + rng.below(2) as usize;
    let cubes: Vec<Cube> = (0..num_cubes)
        .map(|_| {
            let mut lits: Vec<(usize, bool)> = Vec::new();
            for v in 0..k {
                if rng.below(2) == 0 {
                    lits.push((v, rng.below(2) == 0));
                }
            }
            if lits.is_empty() {
                lits.push((rng.below(k as u64) as usize, rng.below(2) == 0));
            }
            Cube::from_literals(&lits).expect("distinct vars by construction")
        })
        .collect();
    Cover::from_cubes(k, cubes)
}

/// A random 2–4-PI, 3–12-node network (same generator family as the
/// incremental differential suite).
fn random_network(rng: &mut TestRng, case: u64) -> Network {
    let num_pis = 2 + rng.below(3) as usize;
    let num_nodes = 3 + rng.below(10) as usize;
    let mut net = Network::new(format!("rand{case}"));
    let mut signals: Vec<NodeId> = (0..num_pis).map(|i| net.add_pi(format!("i{i}"))).collect();
    for n in 0..num_nodes {
        let k = 1 + rng.below(3.min(signals.len() as u64)) as usize;
        let mut fanins: Vec<NodeId> = Vec::new();
        while fanins.len() < k {
            let s = signals[rng.below(signals.len() as u64) as usize];
            if !fanins.contains(&s) {
                fanins.push(s);
            }
        }
        let cover = random_cover(rng, k);
        let id = net.add_node(format!("n{n}"), fanins, cover);
        signals.push(id);
    }
    let last = *signals.last().expect("nodes were added");
    net.add_po("f0", last);
    net.add_po("f1", signals[signals.len() - 2]);
    net
}

/// Random networks × every tail shape around the word and chunk boundaries.
#[test]
fn chunked_matches_scalar_at_every_tail_shape() {
    let mut rng = TestRng::new(seed_from_name("chunked_matches_scalar_at_every_tail_shape"));
    for case in 0..24 {
        let net = random_network(&mut rng, case);
        for n in [1usize, 63, 64, 65, 127, 128, 256] {
            let vectors: Vec<u64> = (0..n).map(|_| rng.below(u64::MAX)).collect();
            let patterns = PatternSet::from_vectors(net.num_pis(), &vectors);
            assert_eq!(patterns.num_patterns(), n, "exact pattern count");
            assert_chunked_matches_scalar(&net, &patterns, &format!("case {case}, {n} patterns"));
        }
    }
}

/// All twelve Table-3 registry circuits: the chunked kernel must reproduce
/// the scalar arena word-for-word, and the error-rate measurement built on
/// it must see a golden network as exactly error-free.
#[test]
fn chunked_matches_scalar_on_all_registry_circuits() {
    for bench in all_benchmarks() {
        let net = (bench.build)();
        let patterns = PatternSet::random(net.num_pis(), 256, 0xC0DE + net.num_pis() as u64);
        assert_chunked_matches_scalar(&net, &patterns, bench.name);
        let sim = simulate(&net, &patterns);
        let reference = po_words(&net, &sim);
        assert_eq!(
            error_rate_from_view(&reference, &net, sim.view()),
            0.0,
            "{}: self-comparison must be exactly zero",
            bench.name
        );
    }
}
