//! Soundness suite for the abstract-interpretation engine.
//!
//! The contract under test: every static interval **contains** the
//! quantity it abstracts.
//!
//! * [`Policy::Exact`] intervals contain the exact signal probabilities
//!   under independent uniform inputs (measured exhaustively — ≤ 10 PIs
//!   make the full input space cheap to sweep bit-parallel);
//! * [`Policy::SampleSound`] intervals seeded with empirical primary-input
//!   frequencies contain every node's simulated frequency on the same
//!   pattern set;
//! * [`error_bounds`] intervals contain the exact (BDD-confirmed) and the
//!   simulated error rate of a mutated network against its golden;
//! * the deliberately unsound [`Policy::IndependenceEverywhere`] is
//!   *caught* by the same containment check — the suite detects a broken
//!   transfer function, it does not merely pass on sound ones.
//!
//! Registry circuits (all 12 benchmarks) get the sample-sound containment
//! check too; their input spaces are too large for the exhaustive sweep.

use als_absint::{
    error_bounds, error_bounds_seeded, signal_probabilities, signal_probabilities_seeded, Interval,
    Policy,
};
use als_circuits::all_benchmarks;
use als_logic::{Cover, Cube};
use als_network::{Network, NodeId};
use als_sim::{error_rate, simulate, PatternSet};
use proptest::prelude::*;

const NUM_PIS: usize = 8;

/// Slack for count→ratio divisions; a genuine containment violation
/// overshoots this by orders of magnitude.
const TOL: f64 = 1e-9;

fn cube(lits: &[(usize, bool)]) -> Cube {
    Cube::from_literals(lits).unwrap()
}

/// Builds a random layered network from a compact recipe (same shape as
/// the root `random_networks` suite, shared-fanin collisions included —
/// those are exactly the reconvergent structures that stress the Fréchet
/// fallback).
fn build_network(recipe: &[(u8, u8, u8)]) -> Network {
    let mut net = Network::new("random");
    let mut signals: Vec<NodeId> = (0..NUM_PIS).map(|i| net.add_pi(format!("x{i}"))).collect();
    for (idx, &(sel_a, sel_b, kind)) in recipe.iter().enumerate() {
        let a = signals[sel_a as usize % signals.len()];
        let mut b = signals[sel_b as usize % signals.len()];
        if a == b {
            b = signals[(sel_b as usize + 1) % signals.len()];
        }
        if a == b {
            continue;
        }
        let cover = match kind % 4 {
            0 => Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
            1 => Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
            2 => Cover::from_cubes(
                2,
                [
                    cube(&[(0, true), (1, false)]),
                    cube(&[(0, false), (1, true)]),
                ],
            ),
            _ => Cover::from_cubes(2, [cube(&[(0, false), (1, false)])]),
        };
        let id = net.add_node(format!("g{idx}"), vec![a, b], cover);
        signals.push(id);
    }
    let n_po = 2.min(signals.len() - NUM_PIS).max(1);
    for (i, &s) in signals.iter().rev().take(n_po).enumerate() {
        net.add_po(format!("y{i}"), s);
    }
    net
}

fn arb_recipe() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 3..12)
}

/// A function-changing mutation with the interface kept intact: the last
/// internal node is stuck at constant zero (the shape of a constant-zero
/// ASE rewrite).
fn mutate(golden: &Network) -> Network {
    let mut approx = golden.clone();
    if let Some(last) = approx.internal_ids().last() {
        approx.replace_with_constant(last, false);
    }
    approx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline containment property, 256 random networks strong:
    /// exact probabilities (uniform inputs, exhaustive sweep) sit inside
    /// the `Exact` intervals, and simulated frequencies sit inside the
    /// empirically-seeded `SampleSound` intervals.
    #[test]
    fn static_intervals_contain_exact_and_simulated_probabilities(recipe in arb_recipe()) {
        let net = build_network(&recipe);
        prop_assume!(net.num_internal() > 0);

        // Exact: the exhaustive pattern set realizes the uniform
        // distribution, so each node's 1-frequency IS its probability.
        let exhaustive = PatternSet::exhaustive(NUM_PIS).unwrap();
        let sim_ex = simulate(&net, &exhaustive);
        let exact = signal_probabilities(&net, Policy::Exact);
        for id in net.internal_ids() {
            let p = sim_ex.probability(id);
            let i = exact.interval(id);
            prop_assert!(
                i.contains_with_tol(p, TOL),
                "exact p={p} escapes {i} at node {id}"
            );
        }

        // SampleSound: a small random sample, intervals seeded with the
        // sample's own PI frequencies.
        let patterns = PatternSet::random(NUM_PIS, 512, 7);
        let sim = simulate(&net, &patterns);
        let seeds: Vec<Interval> = net
            .pis()
            .iter()
            .map(|&pi| Interval::point(sim.probability(pi)))
            .collect();
        let sample = signal_probabilities_seeded(&net, Policy::SampleSound, &seeds);
        for id in net.internal_ids() {
            let f = sim.probability(id);
            let i = sample.interval(id);
            prop_assert!(
                i.contains_with_tol(f, TOL),
                "simulated f={f} escapes {i} at node {id}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Error-bound containment: the combined interval contains both the
    /// exact error rate (exhaustive = the BDD-exact rate over all 2^n
    /// vectors) and the bit-parallel simulated rate.
    #[test]
    fn error_bounds_contain_exact_and_simulated_rates(recipe in arb_recipe()) {
        let golden = build_network(&recipe);
        prop_assume!(golden.num_internal() > 0);
        let approx = mutate(&golden);

        // Exact rate, via the exhaustive sweep and cross-checked against
        // the independent BDD-miter derivation.
        let exhaustive = PatternSet::exhaustive(NUM_PIS).unwrap();
        let exact_rate = error_rate(&golden, &approx, &exhaustive);
        if let Ok(bdd_rate) = als_bdd::exact_error_rate(&golden, &approx, 1 << 20) {
            prop_assert!(
                (bdd_rate - exact_rate).abs() < TOL,
                "exhaustive {exact_rate} vs BDD {bdd_rate}"
            );
        }
        let bounds = error_bounds(&golden, &approx, Policy::Exact).unwrap();
        prop_assert!(
            bounds.combined.contains_with_tol(exact_rate, TOL),
            "exact rate {exact_rate} escapes {}",
            bounds.combined
        );

        // Simulated rate on a finite sample, against empirically-seeded
        // sample-sound bounds.
        let patterns = PatternSet::random(NUM_PIS, 512, 11);
        let sim_rate = error_rate(&golden, &approx, &patterns);
        let sim = simulate(&golden, &patterns);
        let seeds: Vec<Interval> = golden
            .pis()
            .iter()
            .map(|&pi| Interval::point(sim.probability(pi)))
            .collect();
        let sampled = error_bounds_seeded(&golden, &approx, Policy::SampleSound, &seeds).unwrap();
        prop_assert!(
            sampled.combined.contains_with_tol(sim_rate, TOL),
            "simulated rate {sim_rate} escapes {}",
            sampled.combined
        );
    }
}

/// The mutation-detection half of the contract: run the *same* containment
/// check with a deliberately unsound transfer function
/// ([`Policy::IndependenceEverywhere`] multiplies marginals below
/// reconvergent fanout) and the check must fail. A suite that cannot fail
/// proves nothing.
#[test]
fn unsound_transfer_function_is_caught_by_the_containment_check() {
    // s = a, t = ¬a, u = s·t ≡ 0 — the minimal reconvergent witness.
    let mut net = Network::new("reconv");
    let a = net.add_pi("a");
    let s = net.add_node("s", vec![a], Cover::from_cubes(1, [cube(&[(0, true)])]));
    let t = net.add_node("t", vec![a], Cover::from_cubes(1, [cube(&[(0, false)])]));
    let u = net.add_node(
        "u",
        vec![s, t],
        Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
    );
    net.add_po("u", u);

    let exhaustive = PatternSet::exhaustive(1).unwrap();
    let sim = simulate(&net, &exhaustive);
    let truth = sim.probability(u);
    assert_eq!(truth, 0.0, "u is identically zero");

    // Sound policy: containment holds.
    let exact = signal_probabilities(&net, Policy::Exact);
    assert!(exact.interval(u).contains_with_tol(truth, TOL));
    assert!(exact.frechet_forced(u), "reconvergence must force Fréchet");

    // Seeded unsound mutation: the product rule claims P(u) = 0.25 as a
    // point interval, excluding the truth — the check fires.
    let unsound = signal_probabilities(&net, Policy::IndependenceEverywhere);
    assert!(
        !unsound.interval(u).contains_with_tol(truth, TOL),
        "the containment check failed to catch the unsound transfer: {}",
        unsound.interval(u)
    );
}

/// Sample-sound containment on every registry circuit: the intervals
/// seeded with empirical PI frequencies contain all simulated node
/// frequencies, adders and multipliers included (deep reconvergence in
/// the carry/partial-product trees).
#[test]
fn registry_circuits_satisfy_sample_sound_containment() {
    let benchmarks = all_benchmarks();
    assert_eq!(benchmarks.len(), 12, "the paper's table has 12 circuits");
    for bench in benchmarks {
        let net = (bench.build)();
        let patterns = PatternSet::random(net.num_pis(), 2048, 0xC1DC);
        let sim = simulate(&net, &patterns);
        let seeds: Vec<Interval> = net
            .pis()
            .iter()
            .map(|&pi| Interval::point(sim.probability(pi)))
            .collect();
        let probs = signal_probabilities_seeded(&net, Policy::SampleSound, &seeds);
        for id in net.internal_ids() {
            let f = sim.probability(id);
            let i = probs.interval(id);
            assert!(
                i.contains_with_tol(f, TOL),
                "{}: simulated f={f} escapes {i} at node {id}",
                bench.name
            );
        }
    }
}

/// Exact-policy containment on the registry circuits, checked against
/// simulation: the exhaustive space is out of reach at 16–64 PIs, but the
/// exact-policy intervals are sound for the uniform distribution and the
/// empirical frequency of a large sample converges to it — containment
/// with a sampling-noise allowance is a meaningful (if weaker) check that
/// the independence/Fréchet split is not wildly wrong on real topologies.
#[test]
fn registry_circuits_satisfy_exact_containment_within_sampling_noise() {
    for bench in all_benchmarks() {
        let net = (bench.build)();
        let patterns = PatternSet::random(net.num_pis(), 8192, 0xEAC7);
        let sim = simulate(&net, &patterns);
        let probs = signal_probabilities(&net, Policy::Exact);
        // 3σ for a Bernoulli frequency at n = 8192 is ≤ 0.017.
        let slack = 0.02;
        for id in net.internal_ids() {
            let f = sim.probability(id);
            let i = probs.interval(id);
            assert!(
                i.contains_with_tol(f, slack),
                "{}: sampled f={f} escapes exact interval {i} at node {id}",
                bench.name
            );
        }
    }
}
