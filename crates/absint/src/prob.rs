//! Signal-probability analysis: a sound interval `[lo, hi]` on
//! `P(signal = 1)` for every node of a network.
//!
//! The analysis is a single forward pass in topological order. Each
//! internal node's interval is computed from its fanin intervals by a
//! *transfer function* over the node's local Boolean function:
//!
//! * for small fanin windows (≤ [`MAX_MINTERM_VARS`]) the local function is
//!   expanded into its minterms and the on-set mass is bounded with
//!   [`MintermBounds`] — per-minterm joint bounds from the fanin marginals;
//! * for wider windows the factored form is evaluated as an expression tree
//!   over the interval lattice, which is coarser but works for any width.
//!
//! The joint-bound rule is chosen by the [`Policy`]: the independence
//! product rule is only sound between signals whose primary-input support
//! sets are disjoint — signals below a reconvergent fanout share support
//! and are correlated even under independent inputs (see
//! [`als_network::structure::reconvergent_sources`]), and *any* two signals
//! are correlated under the empirical measure of a fixed simulation pattern
//! set. Where independence cannot be justified, the worst-case Fréchet
//! bounds are used; they are sound for every joint distribution.

use crate::local::MAX_MINTERM_VARS;
use crate::{Interval, MintermBounds};
use als_logic::Expr;
use als_network::{Network, NodeId};

/// How the analysis combines fanin probabilities into joint bounds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Policy {
    /// Sound for *independent, exactly-distributed* primary inputs (the
    /// `P(xᵢ = 1) = ½` product-distribution model): the independence
    /// product rule is applied only where the fanins' primary-input
    /// supports are pairwise disjoint; everywhere else — i.e. below
    /// reconvergent fanout — the Fréchet bounds take over. The resulting
    /// intervals contain the exact (BDD-computable) signal probabilities.
    Exact,
    /// Sound for the *empirical* distribution of a fixed simulation
    /// pattern set: no independence anywhere (two signals are always
    /// correlated under a finite sample), Fréchet bounds throughout. Seed
    /// the primary inputs with their empirical frequencies and the
    /// resulting intervals contain every node's simulated frequency.
    SampleSound,
    /// Deliberately **unsound**: the product rule everywhere, ignoring
    /// reconvergence. Exists so the test suite can demonstrate that the
    /// soundness property detects a broken transfer function — on a
    /// reconvergent network this policy produces intervals that exclude
    /// the true probability.
    IndependenceEverywhere,
}

/// The result of a signal-probability analysis.
#[derive(Clone, Debug)]
pub struct SignalProbabilities {
    /// Arena-indexed interval per node (`UNIT` for tombstoned slots).
    intervals: Vec<Interval>,
    /// Arena-indexed: `true` where the transfer had to fall back to the
    /// worst-case rule although the policy would have allowed independence
    /// (shared fanin support — the reconvergence witness).
    frechet_forced: Vec<bool>,
}

impl SignalProbabilities {
    /// The interval of one node.
    pub fn interval(&self, id: NodeId) -> Interval {
        self.intervals[id.index()]
    }

    /// Nodes where shared fanin support forced the worst-case rule under
    /// [`Policy::Exact`] — the nodes below reconvergent fanout.
    pub fn frechet_forced(&self, id: NodeId) -> bool {
        self.frechet_forced[id.index()]
    }

    /// How many nodes fell back to the worst-case rule.
    pub fn frechet_count(&self) -> usize {
        self.frechet_forced.iter().filter(|&&b| b).count()
    }
}

/// Evaluates `expr` over the interval lattice with the given gate rule —
/// the any-width fallback transfer. `independent` selects the product rule
/// (caller guarantees soundness); otherwise Fréchet. Repeated variables in
/// the tree are handled soundly by Fréchet (it assumes nothing); under the
/// product rule they are treated as fresh occurrences, which is exactly the
/// unsoundness [`Policy::IndependenceEverywhere`] exists to demonstrate.
fn eval_expr(expr: &Expr, fanin: &[Interval], independent: bool) -> Interval {
    match expr {
        Expr::Const(b) => {
            if *b {
                Interval::ONE
            } else {
                Interval::ZERO
            }
        }
        Expr::Lit { var, phase } => {
            let i = fanin[*var];
            if *phase {
                i
            } else {
                i.complement()
            }
        }
        Expr::And(children) => children
            .iter()
            .map(|c| eval_expr(c, fanin, independent))
            .fold(Interval::ONE, |acc, x| {
                if independent {
                    acc.and_independent(&x)
                } else {
                    acc.and_frechet(&x)
                }
            }),
        Expr::Or(children) => children
            .iter()
            .map(|c| eval_expr(c, fanin, independent))
            .fold(Interval::ZERO, |acc, x| {
                if independent {
                    acc.or_independent(&x)
                } else {
                    acc.or_frechet(&x)
                }
            }),
    }
}

/// One node's transfer: fanin intervals → the node's interval.
fn transfer(expr: &Expr, k: usize, fanin: &[Interval], independent: bool) -> Interval {
    if let Some(c) = expr.as_constant() {
        return if c { Interval::ONE } else { Interval::ZERO };
    }
    if k <= MAX_MINTERM_VARS {
        let tt = expr.to_truth_table(k);
        let bounds = if independent {
            MintermBounds::from_marginals_independent(fanin)
        } else {
            MintermBounds::from_marginals_frechet(fanin)
        };
        bounds.set_probability(&tt)
    } else if independent && expr_repeats_a_variable(expr) {
        // The tree fallback would multiply a variable with itself; only
        // Fréchet stays sound there.
        eval_expr(expr, fanin, false)
    } else {
        eval_expr(expr, fanin, independent)
    }
}

/// Whether any local variable occurs more than once in the factored form
/// (e.g. `x₀x₁ + ¬x₀x₂`) — tree evaluation under the product rule would
/// treat the occurrences as independent, which is wrong even for
/// independent fanins.
fn expr_repeats_a_variable(expr: &Expr) -> bool {
    fn count(expr: &Expr, seen: &mut Vec<u32>) -> bool {
        match expr {
            Expr::Const(_) => false,
            Expr::Lit { var, .. } => {
                if seen.len() <= *var {
                    seen.resize(*var + 1, 0);
                }
                seen[*var] += 1;
                seen[*var] > 1
            }
            Expr::And(cs) | Expr::Or(cs) => cs.iter().any(|c| count(c, seen)),
        }
    }
    count(expr, &mut Vec::new())
}

/// Runs the analysis with every primary input at the exact unbiased point
/// `[½, ½]` — the distribution model of the paper's error-rate measure.
pub fn signal_probabilities(net: &Network, policy: Policy) -> SignalProbabilities {
    let half = vec![Interval::point(0.5); net.pis().len()];
    signal_probabilities_seeded(net, policy, &half)
}

/// Runs the analysis with caller-provided primary-input intervals (e.g.
/// empirical frequencies for [`Policy::SampleSound`]).
///
/// # Panics
///
/// Panics if `pi_probs` does not match the network's primary-input count.
pub fn signal_probabilities_seeded(
    net: &Network,
    policy: Policy,
    pi_probs: &[Interval],
) -> SignalProbabilities {
    assert_eq!(
        pi_probs.len(),
        net.pis().len(),
        "one seed interval per primary input"
    );
    let arena = net.fanouts().len();
    let mut intervals = vec![Interval::UNIT; arena];
    let mut frechet_forced = vec![false; arena];

    for (pi, seed) in net.pis().iter().zip(pi_probs) {
        intervals[pi.index()] = *seed;
    }

    // Incrementally built PI-support bitmaps (only needed to justify
    // independence under the Exact policy).
    let num_pis = net.pis().len();
    let support_words = num_pis.div_ceil(64).max(1);
    let mut support = vec![vec![0u64; support_words]; arena];
    if policy == Policy::Exact {
        for (i, pi) in net.pis().iter().enumerate() {
            support[pi.index()][i / 64] |= 1u64 << (i % 64);
        }
    }

    for id in net.topo_order() {
        let node = net.node(id);
        if node.is_pi() {
            continue;
        }
        let fanins = node.fanins();
        let k = fanins.len();
        let fanin_intervals: Vec<Interval> = fanins.iter().map(|f| intervals[f.index()]).collect();

        let (independent, forced) = match policy {
            Policy::IndependenceEverywhere => (true, false),
            Policy::SampleSound => (false, false),
            Policy::Exact => {
                // Independence holds iff the fanins' PI supports are
                // pairwise disjoint; overlap means a reconvergent source
                // (often a primary input itself) feeds two fanin cones.
                let mut union = vec![0u64; support_words];
                let mut disjoint = true;
                'fanins: for f in fanins {
                    for (u, s) in union.iter_mut().zip(&support[f.index()]) {
                        if *u & *s != 0 {
                            disjoint = false;
                            break 'fanins;
                        }
                        *u |= *s;
                    }
                }
                (disjoint, !disjoint && k > 1)
            }
        };

        intervals[id.index()] = transfer(node.expr(), k, &fanin_intervals, independent);
        frechet_forced[id.index()] = forced;

        if policy == Policy::Exact {
            let mut acc = vec![0u64; support_words];
            for f in fanins {
                for (a, s) in acc.iter_mut().zip(&support[f.index()]) {
                    *a |= *s;
                }
            }
            support[id.index()] = acc;
        }
    }

    SignalProbabilities {
        intervals,
        frechet_forced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    /// u = a·b over two independent PIs.
    #[test]
    fn independent_and_is_a_point() {
        let mut net = Network::new("and2");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let u = net.add_node(
            "u",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        net.add_po("u", u);
        let probs = signal_probabilities(&net, Policy::Exact);
        let i = probs.interval(u);
        assert!((i.lo - 0.25).abs() < 1e-12 && (i.hi - 0.25).abs() < 1e-12);
        assert!(!probs.frechet_forced(u));
    }

    /// s = a, t = ¬a, u = s·t: exactly zero, and only the Fréchet rule
    /// (triggered by the shared support) keeps the interval sound.
    #[test]
    fn reconvergence_forces_frechet_and_stays_sound() {
        let mut net = Network::new("reconv");
        let a = net.add_pi("a");
        let s = net.add_node("s", vec![a], Cover::from_cubes(1, [cube(&[(0, true)])]));
        let t = net.add_node("t", vec![a], Cover::from_cubes(1, [cube(&[(0, false)])]));
        let u = net.add_node(
            "u",
            vec![s, t],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        net.add_po("u", u);

        let exact = signal_probabilities(&net, Policy::Exact);
        assert!(exact.frechet_forced(u));
        assert_eq!(exact.frechet_count(), 1);
        // True probability is 0: the sound interval must contain it.
        assert!(exact.interval(u).contains(0.0));

        // The deliberately unsound policy multiplies 0.5 · 0.5 = 0.25 and
        // *excludes* the truth — the mutation the soundness suite catches.
        let unsound = signal_probabilities(&net, Policy::IndependenceEverywhere);
        assert!(!unsound.interval(u).contains(0.0));
    }

    #[test]
    fn sample_sound_uses_frechet_even_with_disjoint_support() {
        let mut net = Network::new("and2");
        let a = net.add_pi("a");
        let b = net.add_pi("b");
        let u = net.add_node(
            "u",
            vec![a, b],
            Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
        );
        net.add_po("u", u);
        let probs = signal_probabilities_seeded(
            &net,
            Policy::SampleSound,
            &[Interval::point(0.5), Interval::point(0.5)],
        );
        let i = probs.interval(u);
        // Under a finite sample the AND frequency can be anything in
        // [0, 0.5] — e.g. patterns where a and b never overlap.
        assert!(i.contains(0.0) && i.contains(0.5));
    }

    #[test]
    fn constants_are_points() {
        let mut net = Network::new("consts");
        let a = net.add_pi("a");
        let zero = net.add_node("zero", vec![], Cover::constant_zero(0));
        let one = net.add_node("one", vec![], Cover::constant_one(0));
        let buf = net.add_node("buf", vec![a], Cover::from_cubes(1, [cube(&[(0, true)])]));
        net.add_po("zero", zero);
        net.add_po("one", one);
        net.add_po("buf", buf);
        let probs = signal_probabilities(&net, Policy::Exact);
        assert_eq!(probs.interval(zero), Interval::ZERO);
        assert_eq!(probs.interval(one), Interval::ONE);
        assert_eq!(probs.interval(buf), Interval::point(0.5));
    }

    #[test]
    fn repeated_variable_detection() {
        use als_logic::Expr;
        let repeat = Expr::or(vec![
            Expr::and(vec![Expr::lit(0, true), Expr::lit(1, true)]),
            Expr::and(vec![Expr::lit(0, false), Expr::lit(2, true)]),
        ]);
        assert!(expr_repeats_a_variable(&repeat));
        let linear = Expr::and(vec![Expr::lit(0, true), Expr::lit(1, false)]);
        assert!(!expr_repeats_a_variable(&linear));
    }
}
