//! Sound per-minterm bounds on a node's *local input-pattern distribution*.
//!
//! A node with `k` fanins sees one of `2^k` local patterns per primary-input
//! vector. The selection algorithms price an ASE by summing the empirical
//! probabilities of its erroneous patterns (the apparent error rate, §3.2);
//! this module bounds those sums **without** gathering the per-pattern
//! distribution, from quantities that are 64×–`k`·64× cheaper to obtain:
//!
//! * the fanin *marginals* `p_i = P(fanin_i = 1)` (one popcount each);
//! * for `k = 2`, additionally the pairwise joint `p₁₁ = P(f₀ ∧ f₁)` (one
//!   AND-popcount), which determines the 4-point local distribution
//!   *exactly*;
//! * for `k = 1`, the marginal alone is the exact distribution.
//!
//! For `k ≥ 3` the minterm masses are bounded by the Fréchet inequalities,
//! which hold for **every** joint distribution with the given marginals —
//! including the empirical distribution of a fixed simulation pattern set.
//! That is what makes these bounds sound with respect to the simulated
//! rates the engine would otherwise compute.

use crate::Interval;
use als_logic::TruthTable;

/// The largest local variable count the per-minterm expansion handles —
/// aligned with the bit-parallel simulator's local-window limit.
pub const MAX_MINTERM_VARS: usize = 16;

/// Sound lower/upper bounds on the probability mass of each local minterm.
#[derive(Clone, Debug)]
pub struct MintermBounds {
    num_vars: usize,
    lb: Vec<f64>,
    ub: Vec<f64>,
}

/// The phase-adjusted marginal of variable `i` at minterm `m`: `p_i` when
/// the minterm sets bit `i`, `1 − p_i` otherwise.
fn phase(marginal: &Interval, m: usize, i: usize) -> Interval {
    if m >> i & 1 == 1 {
        *marginal
    } else {
        marginal.complement()
    }
}

impl MintermBounds {
    /// Bounds from fanin marginals alone, assuming nothing about their
    /// correlation (Fréchet): for minterm `m`,
    /// `ub[m] = min_i hi(p̃_i(m))` and
    /// `lb[m] = max(0, Σ_i lo(p̃_i(m)) − (k − 1))`,
    /// where `p̃_i(m)` is the phase-adjusted marginal.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_MINTERM_VARS`] marginals are given.
    pub fn from_marginals_frechet(marginals: &[Interval]) -> MintermBounds {
        let k = marginals.len();
        assert!(
            k <= MAX_MINTERM_VARS,
            "{k} local variables exceed the minterm-expansion limit"
        );
        let size = 1usize << k;
        let mut lb = vec![0.0; size];
        let mut ub = vec![1.0; size];
        for m in 0..size {
            let mut lo_sum = 0.0;
            let mut hi_min = 1.0f64;
            for (i, p) in marginals.iter().enumerate() {
                let ph = phase(p, m, i);
                lo_sum += ph.lo;
                hi_min = hi_min.min(ph.hi);
            }
            lb[m] = (lo_sum - (k as f64 - 1.0)).max(0.0); // lint:allow(as-cast): k <= MAX_MINTERM_VARS = 16, exact in f64
            ub[m] = hi_min;
        }
        MintermBounds {
            num_vars: k,
            lb,
            ub,
        }
    }

    /// Bounds from fanin marginals under the independence product rule:
    /// `P(m) = Π_i p̃_i(m)` as an interval product. Sound **only** when the
    /// fanins are mutually independent.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_MINTERM_VARS`] marginals are given.
    pub fn from_marginals_independent(marginals: &[Interval]) -> MintermBounds {
        let k = marginals.len();
        assert!(
            k <= MAX_MINTERM_VARS,
            "{k} local variables exceed the minterm-expansion limit"
        );
        let size = 1usize << k;
        let mut lb = vec![1.0; size];
        let mut ub = vec![1.0; size];
        for m in 0..size {
            let mut prod = Interval::ONE;
            for (i, p) in marginals.iter().enumerate() {
                prod = prod.and_independent(&phase(p, m, i));
            }
            lb[m] = prod.lo;
            ub[m] = prod.hi;
        }
        MintermBounds {
            num_vars: k,
            lb,
            ub,
        }
    }

    /// The exact single-variable distribution `[1 − p, p]`.
    pub fn exact_single(p: f64) -> MintermBounds {
        let p = p.clamp(0.0, 1.0);
        MintermBounds {
            num_vars: 1,
            lb: vec![1.0 - p, p],
            ub: vec![1.0 - p, p],
        }
    }

    /// The exact two-variable distribution from the marginals and the
    /// pairwise joint `p11 = P(var₀ ∧ var₁)`: three numbers fully determine
    /// all four minterm masses, so the bounds are points. Minterm index
    /// convention matches the simulator: bit `i` is variable `i`.
    pub fn exact_pair(p0: f64, p1: f64, p11: f64) -> MintermBounds {
        let m3 = p11.clamp(0.0, 1.0);
        let m1 = (p0 - p11).clamp(0.0, 1.0);
        let m2 = (p1 - p11).clamp(0.0, 1.0);
        let m0 = (1.0 - p0 - p1 + p11).clamp(0.0, 1.0);
        MintermBounds {
            num_vars: 2,
            lb: vec![m0, m1, m2, m3],
            ub: vec![m0, m1, m2, m3],
        }
    }

    /// Exact per-minterm masses from raw pattern counts — the engine-facing
    /// constructor for `k ≤ 2`, or `None` for larger windows (use
    /// [`MintermBounds::from_marginals_frechet`] there).
    ///
    /// Working in integer counts and dividing once per minterm reproduces
    /// bit-for-bit the probabilities the simulator's local gather would
    /// compute, so a pruning decision made on these bounds agrees exactly
    /// with the dynamic path's accept/reject comparison.
    pub fn from_counts(
        total: u64,
        marginal_counts: &[u64],
        joint11: Option<u64>,
    ) -> Option<MintermBounds> {
        if total == 0 {
            return None;
        }
        let n = total as f64; // lint:allow(as-cast): counts << 2^52, exact in f64
        match (marginal_counts, joint11) {
            ([c], _) => Some(MintermBounds {
                num_vars: 1,
                lb: vec![(total - c) as f64 / n, *c as f64 / n], // lint:allow(as-cast): counts << 2^52, exact in f64
                ub: vec![(total - c) as f64 / n, *c as f64 / n], // lint:allow(as-cast): counts << 2^52, exact in f64
            }),
            ([c0, c1], Some(c11)) => {
                let m3 = c11;
                let m1 = c0.saturating_sub(c11);
                let m2 = c1.saturating_sub(c11);
                let m0 = (total + c11).saturating_sub(c0 + c1);
                let masses = [m0, m1, m2, m3].map(|c| c as f64 / n); // lint:allow(as-cast): counts << 2^52, exact in f64
                Some(MintermBounds {
                    num_vars: 2,
                    lb: masses.to_vec(),
                    ub: masses.to_vec(),
                })
            }
            _ => None,
        }
    }

    /// The number of local variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Sound lower bound on the mass of minterm `m`.
    pub fn lower(&self, m: usize) -> f64 {
        self.lb[m]
    }

    /// Sound upper bound on the mass of minterm `m`.
    pub fn upper(&self, m: usize) -> f64 {
        self.ub[m]
    }

    /// A sound interval on the total mass of a minterm *set* (e.g. an ASE's
    /// ELIPs, or a local function's on-set). Both directions are tightened
    /// through the complement: the set's mass is also `1 −` the
    /// complement's mass, and whichever bound is tighter wins.
    ///
    /// # Panics
    ///
    /// Panics if the set is over a different variable count.
    pub fn set_probability(&self, set: &TruthTable) -> Interval {
        assert_eq!(
            set.num_vars(),
            self.num_vars,
            "minterm set over a different local space"
        );
        let mut in_lo = 0.0;
        let mut in_hi = 0.0;
        let mut out_lo = 0.0;
        let mut out_hi = 0.0;
        for m in 0..1usize << self.num_vars {
            if set.get(m as u64) {
                // lint:allow(as-cast): minterm index < 2^MAX_MINTERM_VARS
                in_lo += self.lb[m];
                in_hi += self.ub[m];
            } else {
                out_lo += self.lb[m];
                out_hi += self.ub[m];
            }
        }
        Interval::new(in_lo.max(1.0 - out_hi), in_hi.min(1.0 - out_lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elips(num_vars: usize, minterms: &[u64]) -> TruthTable {
        let mut tt = TruthTable::zero(num_vars).unwrap();
        for &m in minterms {
            tt.set(m, true);
        }
        tt
    }

    #[test]
    fn single_variable_is_exact() {
        let b = MintermBounds::exact_single(0.3);
        assert_eq!(b.lower(1), 0.3);
        assert_eq!(b.upper(1), 0.3);
        assert!((b.lower(0) - 0.7).abs() < 1e-12);
        // Complement tightening can cross by one ulp (1 − 0.7 ≠ 0.3 in
        // binary); the interval stays sound and ulp-wide.
        let on = b.set_probability(&elips(1, &[1]));
        assert!(on.contains(0.3) && on.width() < 1e-12, "{on}");
    }

    #[test]
    fn exact_pair_recovers_the_four_masses() {
        // p0 = 0.5, p1 = 0.5, perfectly anti-correlated: p11 = 0.
        let b = MintermBounds::exact_pair(0.5, 0.5, 0.0);
        assert_eq!(b.lower(0b11), 0.0);
        assert_eq!(b.upper(0b11), 0.0);
        assert!((b.lower(0b01) - 0.5).abs() < 1e-12);
        assert!((b.lower(0b10) - 0.5).abs() < 1e-12);
        assert!((b.lower(0b00) - 0.0).abs() < 1e-12);
        // The AND on-set {11} has exactly zero mass — the case marginal
        // Fréchet alone cannot see.
        let and_on = b.set_probability(&elips(2, &[0b11]));
        assert_eq!(and_on, Interval::ZERO);
        let fre =
            MintermBounds::from_marginals_frechet(&[Interval::point(0.5), Interval::point(0.5)]);
        let loose = fre.set_probability(&elips(2, &[0b11]));
        assert_eq!(loose, Interval::new(0.0, 0.5));
    }

    #[test]
    fn from_counts_matches_exact_division() {
        // 64 patterns: f0 set on 32, f1 set on 48, both on 24.
        let b = MintermBounds::from_counts(64, &[32, 48], Some(24)).unwrap();
        assert_eq!(b.upper(0b11), 24.0 / 64.0);
        assert_eq!(b.upper(0b01), 8.0 / 64.0);
        assert_eq!(b.upper(0b10), 24.0 / 64.0);
        assert_eq!(b.upper(0b00), 8.0 / 64.0);
        assert!(MintermBounds::from_counts(64, &[1, 2, 3], None).is_none());
        assert!(MintermBounds::from_counts(0, &[0], None).is_none());
    }

    #[test]
    fn frechet_bounds_contain_every_consistent_distribution() {
        // Marginals 0.25 / 0.75 / 0.5: enumerate a few joint distributions
        // with those marginals and check each minterm mass is inside.
        let marg = [0.25, 0.75, 0.5];
        let b = MintermBounds::from_marginals_frechet(&marg.map(Interval::point));
        // Independent joint.
        for m in 0..8usize {
            let mut p = 1.0;
            for (i, &pi) in marg.iter().enumerate() {
                p *= if m >> i & 1 == 1 { pi } else { 1.0 - pi };
            }
            assert!(
                b.lower(m) - 1e-12 <= p && p <= b.upper(m) + 1e-12,
                "independent mass {p} outside [{}, {}] at {m}",
                b.lower(m),
                b.upper(m)
            );
        }
        // Comonotone joint (maximally correlated): P(111) = 0.25,
        // P(110) = 0.25, P(010) = 0.25, P(000) = 0.25.
        for (m, p) in [(0b111, 0.25), (0b110, 0.25), (0b010, 0.25), (0b000, 0.25)] {
            assert!(b.lower(m) - 1e-12 <= p && p <= b.upper(m) + 1e-12);
        }
    }

    #[test]
    fn independent_bounds_are_products() {
        let b = MintermBounds::from_marginals_independent(&[
            Interval::point(0.5),
            Interval::point(0.5),
        ]);
        for m in 0..4usize {
            assert!((b.lower(m) - 0.25).abs() < 1e-12);
            assert!((b.upper(m) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn complement_tightening_helps() {
        // One variable at 0.5 via the Fréchet path: the on-set {0, 1} is
        // the whole space, so the interval must be exactly [1, 1] thanks to
        // the complement side (direct summation alone gives hi = 1 but a
        // loose lo of 0.5 + 0.5 − 0 = 1 here; use two variables for a
        // nontrivial case).
        let b =
            MintermBounds::from_marginals_frechet(&[Interval::point(0.5), Interval::point(0.5)]);
        let full = b.set_probability(&elips(2, &[0, 1, 2, 3]));
        assert_eq!(full, Interval::ONE);
        let empty = b.set_probability(&elips(2, &[]));
        assert_eq!(empty, Interval::ZERO);
    }

    #[test]
    fn empirical_containment_on_random_counts() {
        // Deterministic pseudo-random pattern table over 3 signals; check
        // the Fréchet bounds from the marginals contain the true empirical
        // minterm masses.
        let n = 256u64;
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            state >> 33
        };
        let mut counts = [0u64; 8];
        let mut marg = [0u64; 3];
        for _ in 0..n {
            let v = (next() % 8) as usize;
            counts[v] += 1;
            for (i, m) in marg.iter_mut().enumerate() {
                if v >> i & 1 == 1 {
                    *m += 1;
                }
            }
        }
        let intervals = marg.map(|c| Interval::point(c as f64 / n as f64));
        let b = MintermBounds::from_marginals_frechet(&intervals);
        for m in 0..8usize {
            let p = counts[m] as f64 / n as f64;
            assert!(
                b.lower(m) - 1e-12 <= p && p <= b.upper(m) + 1e-12,
                "minterm {m}: {p} outside [{}, {}]",
                b.lower(m),
                b.upper(m)
            );
        }
    }
}
