//! Abstract-interpretation error-bound engine for the DAC'16 ALS
//! reproduction.
//!
//! Dynamic error evaluation — simulating patterns, counting disagreeing
//! outputs — is exact for the patterns it runs but costs a full sweep per
//! candidate. This crate trades precision for *static* guarantees: every
//! analysis returns an [`Interval`] that provably contains the quantity it
//! abstracts, so a candidate whose lower bound already exceeds the error
//! budget can be discarded without simulating it, and a logged error rate
//! outside its static interval is evidence of a bug.
//!
//! Two lattice domains are provided:
//!
//! * **probability intervals** ([`Interval`], [`SignalProbabilities`]) —
//!   per-signal bounds on `P(signal = 1)` propagated through node
//!   functions under an explicit rule per [`Policy`]: the product rule
//!   only where independence is structurally justified, the Fréchet
//!   inequalities everywhere else (sound for *any* joint distribution,
//!   including the empirical distribution of a fixed pattern set);
//! * **error intervals** ([`ErrorBounds`], [`error_bounds`],
//!   [`single_change_bounds`]) — per-signal and per-output bounds on
//!   `P(approx ≠ golden)`, with precision recovered through structural
//!   refinement: transitive-fanout-cone restriction and fanout-dominator
//!   waypoint caps (see [`als_network::structure`]).
//!
//! The [`MintermBounds`] workhorse prices an arbitrary on-set from fanin
//! marginals (or exact pattern counts, matching the simulator's arithmetic
//! bit for bit at `k ≤ 2`) and backs both domains.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod error;
pub mod interval;
pub mod local;
pub mod prob;

pub use error::{
    error_bounds, error_bounds_seeded, single_change_bounds, AbsintError, ErrorBounds, OutputBound,
};
pub use interval::Interval;
pub use local::{MintermBounds, MAX_MINTERM_VARS};
pub use prob::{signal_probabilities, signal_probabilities_seeded, Policy, SignalProbabilities};
