//! Error-interval analysis: sound bounds on the probability that an
//! approximate network's signals and outputs *differ* from a golden
//! reference.
//!
//! The abstract domain assigns every approximate node `v` an interval on
//! its **error probability** `e_v = P(approx_v ≠ golden_v)`. Primary
//! inputs carry `e = 0` (the interfaces are matched by name); an internal
//! node combines
//!
//! * the *local-diff* probability `d_v` — the chance its own local function
//!   disagrees with the golden node of the same name on identical inputs,
//!   priced over the golden signal distribution with [`MintermBounds`] —
//!   with
//! * the propagated fanin errors, via the sound transfer
//!   `e_v ∈ [max(0, lo(d_v) − Σᵢ hi(e_i)), min(1, hi(d_v) + Σᵢ hi(e_i))]`
//!
//! (an error appears at `v` only through a local diff or a fanin error;
//! fanin errors can also *mask* a local diff, hence the subtraction in the
//! lower bound). Nodes without a golden counterpart fall back to the top
//! interval, which is always sound.
//!
//! For the common single-rewrite question — "this one node's function
//! changed; how wrong can the outputs get?" — [`single_change_bounds`]
//! restricts propagation to the node's transitive-fanout cone (everything
//! outside is exactly `e = 0`) and sharpens every output's upper bound
//! through the fanout dominator tree: each dominator of the changed node is
//! a mandatory waypoint for the error, so its bound caps every output.

use crate::local::MAX_MINTERM_VARS;
use crate::prob::signal_probabilities_seeded;
use crate::{Interval, MintermBounds, Policy, SignalProbabilities};
use als_logic::Expr;
use als_network::structure::{tfo_cone, OutputDominators};
use als_network::{Network, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Why an error analysis could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbsintError {
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for AbsintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "absint: {}", self.message)
    }
}

impl std::error::Error for AbsintError {}

fn err(message: impl Into<String>) -> AbsintError {
    AbsintError {
        message: message.into(),
    }
}

/// One primary output's error interval.
#[derive(Clone, Debug, PartialEq)]
pub struct OutputBound {
    /// The output's name.
    pub name: String,
    /// Sound bounds on `P(approx output ≠ golden output)`.
    pub interval: Interval,
}

/// The result of an error-interval analysis.
#[derive(Clone, Debug)]
pub struct ErrorBounds {
    /// Per-output error intervals, in primary-output order.
    pub per_output: Vec<OutputBound>,
    /// Sound bounds on the paper's error rate — the probability that *any*
    /// output differs on a pattern.
    pub combined: Interval,
    /// Arena-indexed per-signal error intervals (approximate network ids).
    signal: Vec<Interval>,
}

impl ErrorBounds {
    /// The error interval of one signal of the approximate network.
    pub fn signal_error(&self, id: NodeId) -> Interval {
        self.signal[id.index()]
    }
}

/// Combines per-output intervals into the any-output-differs rate: every
/// output differing is one way for the pattern to err (`max` of lower
/// bounds) and the union bound caps the top.
fn combine_outputs(per_output: &[OutputBound]) -> Interval {
    let lo = per_output
        .iter()
        .fold(0.0f64, |acc, o| acc.max(o.interval.lo));
    let hi = per_output.iter().map(|o| o.interval.hi).sum::<f64>();
    Interval::new(lo, hi.min(1.0))
}

/// The golden side of a name match: a local function plus the names of the
/// signals it reads (a primary input reads itself).
fn golden_local(golden: &Network, id: NodeId) -> (Expr, Vec<String>) {
    let node = golden.node(id);
    if node.is_pi() {
        (Expr::lit(0, true), vec![node.name().to_string()])
    } else {
        (
            node.expr().clone(),
            node.fanins()
                .iter()
                .map(|f| golden.node(*f).name().to_string())
                .collect(),
        )
    }
}

/// Bounds the probability that the two local functions disagree when both
/// are evaluated on the golden values of their (union) input signals.
fn local_diff(
    golden: &Network,
    golden_ids: &HashMap<String, NodeId>,
    probs: &SignalProbabilities,
    approx_expr: &Expr,
    approx_fanin_names: &[String],
    golden_id: NodeId,
) -> Interval {
    let (g_expr, g_names) = golden_local(golden, golden_id);
    if *approx_expr == g_expr && approx_fanin_names == g_names.as_slice() {
        return Interval::ZERO;
    }
    // Union variable space: approximate fanins first, then the golden-only
    // ones. Every union signal must exist in the golden network so its
    // marginal (and its "golden value") is defined.
    let mut union: Vec<String> = approx_fanin_names.to_vec();
    for name in &g_names {
        if !union.contains(name) {
            union.push(name.clone());
        }
    }
    if union.len() > MAX_MINTERM_VARS
        || approx_fanin_names
            .iter()
            .any(|n| !golden_ids.contains_key(n))
    {
        return Interval::UNIT;
    }
    let g_map: Vec<usize> = g_names
        .iter()
        .map(|n| union.iter().position(|u| u == n).unwrap_or(0))
        .collect();
    let (Ok(tt_a), Ok(tt_g)) = (
        approx_expr.try_to_truth_table(union.len()),
        g_expr.remap(&g_map).try_to_truth_table(union.len()),
    ) else {
        return Interval::UNIT;
    };
    let diff = &tt_a ^ &tt_g;
    if diff.is_zero() {
        return Interval::ZERO;
    }
    let marginals: Vec<Interval> = union
        .iter()
        .map(|n| {
            golden_ids
                .get(n)
                .map_or(Interval::UNIT, |id| probs.interval(*id))
        })
        .collect();
    // Signals in a local neighbourhood are rarely support-disjoint, so the
    // diff set is always priced with the worst-case joint bounds.
    MintermBounds::from_marginals_frechet(&marginals).set_probability(&diff)
}

/// Computes sound per-output and combined error intervals for `approx`
/// against `golden`.
///
/// `policy` selects the signal-probability model used to price local
/// diffs: [`Policy::Exact`] bounds the true (BDD) error rate under uniform
/// independent inputs; [`Policy::SampleSound`] (seed the PIs with
/// empirical frequencies via [`error_bounds_seeded`]) bounds the simulated
/// rate on that pattern set.
///
/// # Errors
///
/// Returns an error when the two networks' primary interfaces differ.
pub fn error_bounds(
    golden: &Network,
    approx: &Network,
    policy: Policy,
) -> Result<ErrorBounds, AbsintError> {
    let half = vec![Interval::point(0.5); golden.pis().len()];
    error_bounds_seeded(golden, approx, policy, &half)
}

/// [`error_bounds`] with caller-provided primary-input probability
/// intervals (shared by both networks — the interfaces are matched).
///
/// # Errors
///
/// Returns an error when the two networks' primary interfaces differ or
/// the seed count does not match the primary-input count.
pub fn error_bounds_seeded(
    golden: &Network,
    approx: &Network,
    policy: Policy,
    pi_probs: &[Interval],
) -> Result<ErrorBounds, AbsintError> {
    let pi_names = |net: &Network| -> Vec<String> {
        net.pis()
            .iter()
            .map(|p| net.node(*p).name().to_string())
            .collect()
    };
    if pi_names(golden) != pi_names(approx) {
        return Err(err("primary-input interfaces differ"));
    }
    let po_names =
        |net: &Network| -> Vec<String> { net.pos().iter().map(|(n, _)| n.clone()).collect() };
    if po_names(golden) != po_names(approx) {
        return Err(err("primary-output interfaces differ"));
    }
    if pi_probs.len() != golden.pis().len() {
        return Err(err("one seed interval per primary input"));
    }

    let probs = signal_probabilities_seeded(golden, policy, pi_probs);
    let golden_ids: HashMap<String, NodeId> = golden
        .node_ids()
        .map(|id| (golden.node(id).name().to_string(), id))
        .collect();

    let arena = approx.fanouts().len();
    let mut signal = vec![Interval::UNIT; arena];
    for pi in approx.pis() {
        signal[pi.index()] = Interval::ZERO;
    }
    for id in approx.topo_order() {
        let node = approx.node(id);
        if node.is_pi() {
            continue;
        }
        let fanin_names: Vec<String> = node
            .fanins()
            .iter()
            .map(|f| approx.node(*f).name().to_string())
            .collect();
        let d = match golden_ids.get(node.name()) {
            Some(&gid) => local_diff(golden, &golden_ids, &probs, node.expr(), &fanin_names, gid),
            // No golden counterpart: nothing is known about this signal.
            None => Interval::UNIT,
        };
        let propagated: f64 = node.fanins().iter().map(|f| signal[f.index()].hi).sum();
        signal[id.index()] = Interval::new(d.lo - propagated, d.hi + propagated);
    }

    let per_output: Vec<OutputBound> = approx
        .pos()
        .iter()
        .map(|(name, driver)| OutputBound {
            name: name.clone(),
            interval: signal[driver.index()],
        })
        .collect();
    let combined = combine_outputs(&per_output);
    Ok(ErrorBounds {
        per_output,
        combined,
        signal,
    })
}

/// Error intervals for a *single local rewrite*: the node `node` of `net`
/// is about to have its local function changed such that the new and old
/// functions disagree with probability inside `local_diff` (e.g. an ASE's
/// ELIP-mass interval from [`MintermBounds::set_probability`]).
///
/// Everything outside the node's transitive-fanout cone is exactly
/// unaffected (`e = 0`); inside the cone, errors propagate with the sum
/// transfer, capped by `hi(local_diff)` — any downstream error requires
/// the rewritten node itself to differ. Every fanout dominator of `node`
/// is a mandatory waypoint for the error, so its interval additionally
/// caps every output bound.
pub fn single_change_bounds(net: &Network, node: NodeId, local_diff: Interval) -> ErrorBounds {
    let arena = net.fanouts().len();
    let mut signal = vec![Interval::ZERO; arena];
    signal[node.index()] = local_diff;
    let cone = tfo_cone(net, node);
    let mut in_cone = vec![false; arena];
    for id in &cone {
        in_cone[id.index()] = true;
    }
    for &v in &cone {
        if v == node {
            continue;
        }
        let propagated: f64 = net
            .node(v)
            .fanins()
            .iter()
            .filter(|f| in_cone[f.index()])
            .map(|f| signal[f.index()].hi)
            .sum();
        signal[v.index()] = Interval::new(0.0, propagated.min(local_diff.hi));
    }

    let dom = OutputDominators::compute(net);
    let waypoint_cap = dom
        .chain(node)
        .iter()
        .map(|d| signal[d.index()].hi)
        .fold(local_diff.hi, f64::min);

    let per_output: Vec<OutputBound> = net
        .pos()
        .iter()
        .map(|(name, driver)| {
            let e = signal[driver.index()];
            let interval = if in_cone[driver.index()] {
                Interval::new(e.lo, e.hi.min(waypoint_cap))
            } else {
                Interval::ZERO
            };
            OutputBound {
                name: name.clone(),
                interval,
            }
        })
        .collect();
    let combined = combine_outputs(&per_output).intersect(&Interval::new(0.0, local_diff.hi));
    ErrorBounds {
        per_output,
        combined,
        signal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    /// y = a·b; the approximation rewrites y to constant 0.
    fn and_pair() -> (Network, Network) {
        let build = |expr_zero: bool| {
            let mut net = Network::new("t");
            let a = net.add_pi("a");
            let b = net.add_pi("b");
            let y = if expr_zero {
                net.add_node("y", vec![], Cover::constant_zero(0))
            } else {
                net.add_node(
                    "y",
                    vec![a, b],
                    Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
                )
            };
            net.add_po("y", y);
            net
        };
        (build(false), build(true))
    }

    #[test]
    fn identical_networks_have_zero_error() {
        let (golden, _) = and_pair();
        let bounds = error_bounds(&golden, &golden, Policy::Exact).unwrap();
        assert_eq!(bounds.combined, Interval::ZERO);
        assert_eq!(bounds.per_output[0].interval, Interval::ZERO);
    }

    #[test]
    fn constant_zero_rewrite_is_priced_exactly() {
        let (golden, approx) = and_pair();
        let bounds = error_bounds(&golden, &approx, Policy::Exact).unwrap();
        // y differs exactly when a·b = 1: probability 1/4 under uniform
        // inputs, and the two local functions share no fanin vars — the
        // diff set {11} is priced from the PI marginals.
        let i = bounds.per_output[0].interval;
        assert!(i.contains(0.25), "interval {i} must contain 1/4");
        assert!(i.lo <= 0.25 && i.hi >= 0.25);
        assert_eq!(bounds.combined, i);
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let (golden, _) = and_pair();
        let mut other = Network::new("other");
        other.add_pi("a");
        let e = error_bounds(&golden, &other, Policy::Exact).unwrap_err();
        assert!(e.message.contains("interface"), "{e}");
    }

    #[test]
    fn single_change_is_cone_restricted() {
        // x → a → p (PO), and an untouched sibling q (PO) off x.
        let mut net = Network::new("cone");
        let x = net.add_pi("x");
        let a = net.add_node("a", vec![x], Cover::from_cubes(1, [cube(&[(0, true)])]));
        let p = net.add_node("p", vec![a], Cover::from_cubes(1, [cube(&[(0, true)])]));
        let q = net.add_node("q", vec![x], Cover::from_cubes(1, [cube(&[(0, false)])]));
        net.add_po("p", p);
        net.add_po("q", q);
        let bounds = single_change_bounds(&net, a, Interval::point(0.125));
        assert_eq!(bounds.per_output[1].interval, Interval::ZERO, "q untouched");
        let p_bound = bounds.per_output[0].interval;
        assert!(p_bound.hi <= 0.125 + 1e-12, "capped by the local diff");
        assert!(bounds.combined.hi <= 0.125 + 1e-12);
        assert_eq!(bounds.signal_error(q), Interval::ZERO);
    }

    #[test]
    fn dominator_cap_applies_to_deep_outputs() {
        // c → m → … → o: m dominates c, so o's bound never exceeds m's
        // even though the naive sum through a diamond would double it.
        let mut net = Network::new("dom");
        let x = net.add_pi("x");
        let c = net.add_node("c", vec![x], Cover::from_cubes(1, [cube(&[(0, true)])]));
        let s = net.add_node("s", vec![c], Cover::from_cubes(1, [cube(&[(0, true)])]));
        let t = net.add_node("t", vec![c], Cover::from_cubes(1, [cube(&[(0, false)])]));
        let m = net.add_node(
            "m",
            vec![s, t],
            Cover::from_cubes(2, [cube(&[(0, true)]), cube(&[(1, true)])]),
        );
        let o = net.add_node("o", vec![m], Cover::from_cubes(1, [cube(&[(0, true)])]));
        net.add_po("o", o);
        let d = Interval::point(0.1);
        let bounds = single_change_bounds(&net, c, d);
        // Through the diamond the plain sum at m would be 0.2; the cap by
        // the local diff (and the dominator chain through m) holds it at
        // 0.1.
        assert!(bounds.per_output[0].interval.hi <= 0.1 + 1e-12);
    }
}
