//! The probability-interval lattice `[lo, hi] ⊆ [0, 1]`.
//!
//! An [`Interval`] abstracts an unknown probability `p`: the concretization
//! is every `p` with `lo ≤ p ≤ hi`. The lattice is ordered by inclusion;
//! `[0, 1]` is ⊤ (no information) and each point interval is an atom. Every
//! operation here is *sound*: if the inputs contain the true probabilities
//! of their events, the output contains the true probability of the
//! combined event — under the stated assumption (independence for the
//! `*_independent` ops, none at all for the Fréchet ops).

use std::fmt;

/// A closed probability interval `[lo, hi] ⊆ [0, 1]`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Interval {
    /// Sound lower bound on the abstracted probability.
    pub lo: f64,
    /// Sound upper bound on the abstracted probability.
    pub hi: f64,
}

impl Interval {
    /// The full lattice top `[0, 1]` — no information.
    pub const UNIT: Interval = Interval { lo: 0.0, hi: 1.0 };
    /// The impossible event, exactly.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };
    /// The certain event, exactly.
    pub const ONE: Interval = Interval { lo: 1.0, hi: 1.0 };

    /// A clamped interval. Endpoints are clamped into `[0, 1]` and ordered,
    /// so any `(lo, hi)` pair yields a well-formed value.
    pub fn new(lo: f64, hi: f64) -> Interval {
        let lo = lo.clamp(0.0, 1.0);
        let hi = hi.clamp(0.0, 1.0);
        Interval {
            lo: lo.min(hi),
            hi: lo.max(hi),
        }
    }

    /// The point interval `[p, p]`.
    pub fn point(p: f64) -> Interval {
        Interval::new(p, p)
    }

    /// Whether `p` lies inside the interval.
    pub fn contains(&self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Whether `p` lies inside the interval widened by `tol` on each side —
    /// the form soundness checks use so float round-off never produces a
    /// spurious violation.
    pub fn contains_with_tol(&self, p: f64, tol: f64) -> bool {
        self.lo - tol <= p && p <= self.hi + tol
    }

    /// `hi − lo`, the imprecision of the abstraction.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// The complement event: `P(¬A) = 1 − P(A)`.
    pub fn complement(&self) -> Interval {
        Interval::new(1.0 - self.hi, 1.0 - self.lo)
    }

    /// `P(A ∩ B)` under independence: the product rule. Sound **only**
    /// when the events are independent (e.g. functions of disjoint sets of
    /// independent primary inputs).
    pub fn and_independent(&self, other: &Interval) -> Interval {
        Interval::new(self.lo * other.lo, self.hi * other.hi)
    }

    /// `P(A ∪ B)` under independence: `1 − (1−a)(1−b)`.
    pub fn or_independent(&self, other: &Interval) -> Interval {
        self.complement()
            .and_independent(&other.complement())
            .complement()
    }

    /// `P(A ∩ B)` with **no** assumption: the Fréchet conjunction bound
    /// `[max(0, a.lo + b.lo − 1), min(a.hi, b.hi)]`, sound for every joint
    /// distribution with the given marginals — including the empirical
    /// distribution of a fixed simulation pattern set.
    pub fn and_frechet(&self, other: &Interval) -> Interval {
        Interval::new((self.lo + other.lo - 1.0).max(0.0), self.hi.min(other.hi))
    }

    /// `P(A ∪ B)` with no assumption: the Fréchet disjunction bound
    /// `[max(a.lo, b.lo), min(1, a.hi + b.hi)]`.
    pub fn or_frechet(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), (self.hi + other.hi).min(1.0))
    }

    /// The lattice join: the smallest interval containing both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The lattice meet: when both intervals soundly bound the *same*
    /// probability, so does their intersection. If float round-off makes
    /// the bounds cross, the result collapses to the crossing point rather
    /// than inverting.
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.6}, {:.6}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps_and_orders() {
        let i = Interval::new(1.5, -0.2);
        assert_eq!(i, Interval::UNIT);
        assert_eq!(i.lo, 0.0);
        assert_eq!(i.hi, 1.0);
        assert_eq!(Interval::point(0.3).width(), 0.0);
    }

    #[test]
    fn frechet_bounds_are_the_textbook_ones() {
        let a = Interval::point(0.7);
        let b = Interval::point(0.6);
        let and = a.and_frechet(&b);
        assert!((and.lo - 0.3).abs() < 1e-12); // 0.7 + 0.6 − 1
        assert!((and.hi - 0.6).abs() < 1e-12); // min
        let or = a.or_frechet(&b);
        assert!((or.lo - 0.7).abs() < 1e-12); // max
        assert!((or.hi - 1.0).abs() < 1e-12); // capped sum
    }

    #[test]
    fn independence_is_tighter_than_frechet() {
        let a = Interval::point(0.5);
        let b = Interval::point(0.5);
        let ind = a.and_independent(&b);
        let fre = a.and_frechet(&b);
        assert!((ind.lo - 0.25).abs() < 1e-12);
        assert!((ind.hi - 0.25).abs() < 1e-12);
        assert!(fre.lo <= ind.lo && ind.hi <= fre.hi);
    }

    #[test]
    fn frechet_contains_every_achievable_joint() {
        // For marginals 0.5/0.5 the joint P(A∩B) ranges over [0, 0.5]
        // (perfect anti-correlation to perfect correlation) — exactly the
        // Fréchet interval.
        let f = Interval::point(0.5).and_frechet(&Interval::point(0.5));
        assert!(f.contains(0.0) && f.contains(0.25) && f.contains(0.5));
        assert!(!f.contains(0.6));
    }

    #[test]
    fn complement_and_hull_and_intersect() {
        let a = Interval::new(0.2, 0.4);
        assert_eq!(a.complement(), Interval::new(0.6, 0.8));
        let b = Interval::new(0.3, 0.9);
        assert_eq!(a.hull(&b), Interval::new(0.2, 0.9));
        assert_eq!(a.intersect(&b), Interval::new(0.3, 0.4));
        // Disjoint bounds collapse instead of inverting.
        let c = Interval::new(0.8, 0.9);
        let x = a.intersect(&c);
        assert!(x.lo <= x.hi);
    }

    #[test]
    fn containment_with_tolerance() {
        let a = Interval::new(0.25, 0.5);
        assert!(a.contains(0.25));
        assert!(!a.contains(0.25 - 1e-9));
        assert!(a.contains_with_tol(0.25 - 1e-9, 1e-6));
    }

    #[test]
    fn display_is_bracketed() {
        assert_eq!(format!("{}", Interval::UNIT), "[0.000000, 1.000000]");
    }
}
