//! Property-based tests: AIG compilation must preserve network semantics,
//! and CEC must agree with exhaustive comparison on random network pairs.

use als_aig::{cec, Aig, CecResult};
use als_logic::{Cover, Cube};
use als_network::{Network, NodeId};
use proptest::prelude::*;

const NUM_PIS: usize = 4;

fn build_network(recipe: &[(u8, u8, u8)]) -> Network {
    let mut net = Network::new("random");
    let mut signals: Vec<NodeId> = (0..NUM_PIS).map(|i| net.add_pi(format!("x{i}"))).collect();
    for (idx, &(sel_a, sel_b, kind)) in recipe.iter().enumerate() {
        let a = signals[sel_a as usize % signals.len()];
        let mut b = signals[sel_b as usize % signals.len()];
        if a == b {
            b = signals[(sel_b as usize + 1) % signals.len()];
        }
        if a == b {
            continue;
        }
        let cover = match kind % 4 {
            0 => Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
            1 => Cover::from_cubes(
                2,
                [
                    Cube::from_literals(&[(0, true)]).unwrap(),
                    Cube::from_literals(&[(1, true)]).unwrap(),
                ],
            ),
            2 => Cover::from_cubes(
                2,
                [
                    Cube::from_literals(&[(0, true), (1, false)]).unwrap(),
                    Cube::from_literals(&[(0, false), (1, true)]).unwrap(),
                ],
            ),
            _ => Cover::from_cubes(2, [Cube::from_literals(&[(0, false), (1, false)]).unwrap()]),
        };
        let id = net.add_node(format!("g{idx}"), vec![a, b], cover);
        signals.push(id);
    }
    let driver = *signals.last().expect("at least the PIs exist");
    net.add_po("y", driver);
    net
}

fn arb_recipe() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aig_compilation_preserves_semantics(recipe in arb_recipe()) {
        let net = build_network(&recipe);
        prop_assume!(net.num_internal() > 0);
        let aig = Aig::from_network(&net);
        for m in 0..(1u64 << NUM_PIS) {
            let pis: Vec<bool> = (0..NUM_PIS).map(|i| m >> i & 1 == 1).collect();
            let expect = net.eval(&pis);
            for (po, e) in aig.pos().iter().zip(&expect) {
                prop_assert_eq!(aig.eval(*po, m), *e, "minterm {}", m);
            }
        }
    }

    #[test]
    fn cec_agrees_with_exhaustive_comparison(ra in arb_recipe(), rb in arb_recipe()) {
        let a = build_network(&ra);
        let b = build_network(&rb);
        let exhaustively_equal = (0..(1u64 << NUM_PIS)).all(|m| {
            let pis: Vec<bool> = (0..NUM_PIS).map(|i| m >> i & 1 == 1).collect();
            a.eval(&pis) == b.eval(&pis)
        });
        match cec(&a, &b) {
            CecResult::Equivalent => prop_assert!(exhaustively_equal),
            CecResult::Counterexample(pis) => {
                prop_assert!(!exhaustively_equal);
                prop_assert_ne!(a.eval(&pis), b.eval(&pis), "witness must distinguish");
            }
            CecResult::InterfaceMismatch => prop_assert!(false, "same interface"),
        }
    }

    #[test]
    fn strashing_is_canonical_for_commuted_builds(sel in any::<u8>()) {
        // Build the same function twice with commuted operand orders: the
        // AIG node counts must match exactly.
        let mut aig1 = Aig::new(3);
        let mut aig2 = Aig::new(3);
        let i = (sel % 3) as usize;
        let j = ((sel / 3) % 3) as usize;
        prop_assume!(i != j);
        let (a1, b1) = (aig1.pi(i), aig1.pi(j));
        let (a2, b2) = (aig2.pi(j), aig2.pi(i));
        let f1 = {
            let x = aig1.and(a1, b1);
            aig1.xor(x, a1)
        };
        let f2 = {
            let x = aig2.and(b2, a2);
            aig2.xor(x, b2)
        };
        prop_assert_eq!(aig1.num_ands(), aig2.num_ands());
        for m in 0..8u64 {
            prop_assert_eq!(aig1.eval(f1, m), aig2.eval(f2, m));
        }
    }
}
