//! And-inverter graphs (AIGs) with structural hashing, plus SAT-based
//! combinational equivalence checking (CEC).
//!
//! The ALS flow needs trustworthy verification in two flavours: the
//! BDD-based *exact error rate* (`als-bdd`) and, for BDD-hostile circuits,
//! a yes/no *equivalence* certificate. This crate provides the latter: it
//! compiles networks into structurally-hashed AIGs, builds a miter, encodes
//! it into the workspace's CDCL solver and asks for a distinguishing input
//! — `UNSAT` proves equivalence, a model is a counterexample vector.
//!
//! # Example
//!
//! ```
//! use als_aig::{cec, CecResult};
//! use als_circuits::adders::{carry_lookahead_adder, ripple_carry_adder};
//!
//! // Two structurally different adders are functionally identical.
//! let rca = ripple_carry_adder(6);
//! let cla = carry_lookahead_adder(6);
//! assert_eq!(cec(&rca, &cla), CecResult::Equivalent);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

use als_logic::Expr;
use als_network::{Network, NodeKind};
use als_sat::{Lit as SatLit, SatResult, Solver, Var};
use std::collections::HashMap;
use std::fmt;

/// An AIG literal: an AIG node with an optional complement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AigLit(u32);

impl AigLit {
    /// The constant-false literal.
    pub const FALSE: AigLit = AigLit(0);
    /// The constant-true literal.
    pub const TRUE: AigLit = AigLit(1);

    fn new(node: u32, complement: bool) -> AigLit {
        AigLit(node << 1 | u32::from(complement))
    }

    /// The underlying node index.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

#[derive(Clone, Copy, Debug)]
enum AigNode {
    Const, // node 0
    Pi(usize),
    And(AigLit, AigLit),
}

/// An and-inverter graph with structural hashing (two-input ANDs with
/// complemented edges; constant and PI leaves).
#[derive(Debug)]
pub struct Aig {
    nodes: Vec<AigNode>,
    strash: HashMap<(u32, u32), u32>,
    num_pis: usize,
    pos: Vec<AigLit>,
}

impl Aig {
    /// An empty AIG with `num_pis` primary inputs.
    pub fn new(num_pis: usize) -> Aig {
        let mut nodes = vec![AigNode::Const];
        for i in 0..num_pis {
            nodes.push(AigNode::Pi(i));
        }
        Aig {
            nodes,
            strash: HashMap::new(),
            num_pis,
            pos: Vec::new(),
        }
    }

    /// The literal of PI `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_pis`.
    pub fn pi(&self, i: usize) -> AigLit {
        assert!(i < self.num_pis, "pi index out of range");
        AigLit::new(1 + i as u32, false) // lint:allow(as-cast): node count < 2^31 (AigLit packs ids into u32)
    }

    /// Number of primary inputs.
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }

    /// Number of AND nodes (the AIG size metric).
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.num_pis
    }

    /// The registered primary outputs.
    pub fn pos(&self) -> &[AigLit] {
        &self.pos
    }

    /// Registers a primary output.
    pub fn add_po(&mut self, lit: AigLit) {
        self.pos.push(lit);
    }

    /// Builds `a AND b`, applying constant folding, unit rules and
    /// structural hashing (commutative-normalized).
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant and trivial rules.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        let (x, y) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if let Some(&n) = self.strash.get(&(x, y)) {
            return AigLit::new(n, false);
        }
        let n = self.nodes.len() as u32; // lint:allow(as-cast): node count < 2^31 (AigLit packs ids into u32)
        self.nodes.push(AigNode::And(AigLit(x), AigLit(y)));
        self.strash.insert((x, y), n);
        AigLit::new(n, false)
    }

    /// Builds `a OR b` (De Morgan).
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// Builds `a XOR b` (three ANDs after hashing).
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let t1 = self.and(a, !b);
        let t2 = self.and(!a, b);
        self.or(t1, t2)
    }

    /// Builds `s ? hi : lo`.
    pub fn mux(&mut self, s: AigLit, lo: AigLit, hi: AigLit) -> AigLit {
        let t = self.and(s, hi);
        let e = self.and(!s, lo);
        self.or(t, e)
    }

    /// Evaluates a literal under a PI assignment (bit `i` = PI `i`).
    pub fn eval(&self, lit: AigLit, assignment: u64) -> bool {
        let mut memo: HashMap<u32, bool> = HashMap::new();
        self.eval_rec(lit.node(), assignment, &mut memo) ^ lit.is_complemented()
    }

    fn eval_rec(&self, node: u32, assignment: u64, memo: &mut HashMap<u32, bool>) -> bool {
        if let Some(&v) = memo.get(&node) {
            return v;
        }
        let v = match self.nodes[node as usize] {
            // lint:allow(as-cast): u32 index fits usize on all supported targets
            AigNode::Const => false,
            AigNode::Pi(i) => assignment >> i & 1 == 1,
            AigNode::And(a, b) => {
                let va = self.eval_rec(a.node(), assignment, memo) ^ a.is_complemented();
                let vb = self.eval_rec(b.node(), assignment, memo) ^ b.is_complemented();
                va && vb
            }
        };
        memo.insert(node, v);
        v
    }

    /// Compiles a factored expression over `inputs` into the AIG.
    pub fn build_expr(&mut self, expr: &Expr, inputs: &[AigLit]) -> AigLit {
        match expr {
            Expr::Const(false) => AigLit::FALSE,
            Expr::Const(true) => AigLit::TRUE,
            Expr::Lit { var, phase } => {
                let l = inputs[*var];
                if *phase {
                    l
                } else {
                    !l
                }
            }
            Expr::And(children) => {
                let mut acc = AigLit::TRUE;
                for c in children {
                    let l = self.build_expr(c, inputs);
                    acc = self.and(acc, l);
                }
                acc
            }
            Expr::Or(children) => {
                let mut acc = AigLit::FALSE;
                for c in children {
                    let l = self.build_expr(c, inputs);
                    acc = self.or(acc, l);
                }
                acc
            }
        }
    }

    /// Compiles a whole network (factored forms node by node, POs
    /// registered in order).
    pub fn from_network(net: &Network) -> Aig {
        let mut aig = Aig::new(net.num_pis());
        let mut of_node: HashMap<als_network::NodeId, AigLit> = HashMap::new();
        for (i, &pi) in net.pis().iter().enumerate() {
            of_node.insert(pi, aig.pi(i));
        }
        for id in net.topo_order() {
            let node = net.node(id);
            if node.kind() != NodeKind::Internal {
                continue;
            }
            let inputs: Vec<AigLit> = node.fanins().iter().map(|f| of_node[f]).collect();
            let lit = aig.build_expr(node.expr(), &inputs);
            of_node.insert(id, lit);
        }
        for (_, d) in net.pos() {
            let lit = of_node[d];
            aig.add_po(lit);
        }
        aig
    }

    /// Tseitin-encodes the cone of every PO into `solver`; returns the SAT
    /// literal of each PO and the PI variables.
    pub fn encode_cnf(&self, solver: &mut Solver) -> (Vec<Var>, Vec<SatLit>) {
        let mut pi_vars = Vec::with_capacity(self.num_pis);
        let mut node_var: Vec<Option<Var>> = vec![None; self.nodes.len()];
        // Constant node: a variable forced to 0.
        let const_var = solver.new_var();
        solver.add_clause(&[SatLit::neg(const_var)]);
        node_var[0] = Some(const_var);
        for i in 0..self.num_pis {
            let v = solver.new_var();
            pi_vars.push(v);
            node_var[1 + i] = Some(v);
        }
        // Encode ANDs bottom-up (nodes are created in topological order).
        for (n, node) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = node {
                let va = node_var[a.node() as usize].expect("topological order"); // lint:allow(panic): internal invariant; the message states it // lint:allow(as-cast): u32 index fits usize on all supported targets
                let vb = node_var[b.node() as usize].expect("topological order"); // lint:allow(panic): internal invariant; the message states it // lint:allow(as-cast): u32 index fits usize on all supported targets
                let la = SatLit::with_sign(va, !a.is_complemented());
                let lb = SatLit::with_sign(vb, !b.is_complemented());
                let v = solver.new_var();
                let lv = SatLit::pos(v);
                // v ↔ la ∧ lb
                solver.add_clause(&[!lv, la]);
                solver.add_clause(&[!lv, lb]);
                solver.add_clause(&[!la, !lb, lv]);
                node_var[n] = Some(v);
            }
        }
        let po_lits = self
            .pos
            .iter()
            .map(|l| {
                let v = node_var[l.node() as usize].expect("all nodes encoded"); // lint:allow(panic): internal invariant; the message states it // lint:allow(as-cast): u32 index fits usize on all supported targets
                SatLit::with_sign(v, !l.is_complemented())
            })
            .collect();
        (pi_vars, po_lits)
    }
}

/// The outcome of a combinational equivalence check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CecResult {
    /// The networks are functionally identical.
    Equivalent,
    /// A distinguishing PI assignment (in PI declaration order).
    Counterexample(Vec<bool>),
    /// The interfaces differ (PI/PO counts).
    InterfaceMismatch,
}

impl fmt::Display for CecResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CecResult::Equivalent => write!(f, "equivalent"),
            CecResult::Counterexample(v) => {
                write!(f, "not equivalent; witness ")?;
                for &b in v.iter().rev() {
                    write!(f, "{}", u8::from(b))?;
                }
                Ok(())
            }
            CecResult::InterfaceMismatch => write!(f, "interface mismatch"),
        }
    }
}

/// SAT-based combinational equivalence check: builds both AIGs over shared
/// PIs, miters every PO pair, and asks the CDCL solver for a distinguishing
/// input.
pub fn cec(golden: &Network, candidate: &Network) -> CecResult {
    if golden.num_pis() != candidate.num_pis() || golden.num_pos() != candidate.num_pos() {
        return CecResult::InterfaceMismatch;
    }
    // Build one AIG holding both networks (shared PIs maximize structural
    // sharing in the miter).
    let mut aig = Aig::new(golden.num_pis());
    let build = |net: &Network, aig: &mut Aig| -> Vec<AigLit> {
        let mut of_node: HashMap<als_network::NodeId, AigLit> = HashMap::new();
        for (i, &pi) in net.pis().iter().enumerate() {
            of_node.insert(pi, aig.pi(i));
        }
        for id in net.topo_order() {
            let node = net.node(id);
            if node.kind() != NodeKind::Internal {
                continue;
            }
            let inputs: Vec<AigLit> = node.fanins().iter().map(|f| of_node[f]).collect();
            let lit = aig.build_expr(node.expr(), &inputs);
            of_node.insert(id, lit);
        }
        net.pos().iter().map(|(_, d)| of_node[d]).collect()
    };
    let g = build(golden, &mut aig);
    let c = build(candidate, &mut aig);
    let mut miter = AigLit::FALSE;
    for (x, y) in g.iter().zip(&c) {
        // Structural hashing often proves equality outright here.
        let d = aig.xor(*x, *y);
        miter = aig.or(miter, d);
    }
    if miter == AigLit::FALSE {
        return CecResult::Equivalent;
    }
    aig.add_po(miter);

    let mut solver = Solver::new();
    let (pi_vars, po_lits) = aig.encode_cnf(&mut solver);
    let miter_lit = *po_lits.last().expect("miter was registered"); // lint:allow(panic): internal invariant; the message states it
    solver.add_clause(&[miter_lit]);
    match solver.solve() {
        SatResult::Unsat => CecResult::Equivalent,
        SatResult::Sat => CecResult::Counterexample(
            pi_vars
                .iter()
                .map(|&v| solver.value(v).unwrap_or(false))
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_circuits::adders::{carry_lookahead_adder, kogge_stone_adder, ripple_carry_adder};
    use als_logic::{Cover, Cube};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits).unwrap()
    }

    #[test]
    fn literal_algebra() {
        let mut aig = Aig::new(2);
        let a = aig.pi(0);
        let b = aig.pi(1);
        assert_eq!(aig.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(aig.and(a, AigLit::TRUE), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), AigLit::FALSE);
        let ab1 = aig.and(a, b);
        let ab2 = aig.and(b, a);
        assert_eq!(ab1, ab2, "strashing must normalize commutativity");
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut aig = Aig::new(3);
        let a = aig.pi(0);
        let b = aig.pi(1);
        let c = aig.pi(2);
        let f = {
            let ab = aig.xor(a, b);
            aig.mux(c, ab, a)
        };
        for m in 0..8u64 {
            let (va, vb, vc) = (m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1);
            let expect = if vc { va } else { va ^ vb };
            assert_eq!(aig.eval(f, m), expect, "m={m:03b}");
        }
    }

    #[test]
    fn from_network_equivalence() {
        let net = ripple_carry_adder(4);
        let aig = Aig::from_network(&net);
        assert_eq!(aig.num_pis(), 8);
        assert_eq!(aig.pos().len(), 5);
        for m in (0..256u64).step_by(11) {
            let pis: Vec<bool> = (0..8).map(|i| m >> i & 1 == 1).collect();
            let expect = net.eval(&pis);
            for (po, e) in aig.pos().iter().zip(&expect) {
                assert_eq!(aig.eval(*po, m), *e, "vector {m:08b}");
            }
        }
    }

    #[test]
    fn cec_proves_adder_equivalence() {
        let rca = ripple_carry_adder(8);
        let cla = carry_lookahead_adder(8);
        let ksa = kogge_stone_adder(8);
        assert_eq!(cec(&rca, &cla), CecResult::Equivalent);
        assert_eq!(cec(&rca, &ksa), CecResult::Equivalent);
    }

    #[test]
    fn cec_finds_counterexamples() {
        let golden = ripple_carry_adder(6);
        let mut broken = golden.clone();
        let victim = broken.internal_ids().nth(5).unwrap();
        broken.replace_with_constant(victim, false);
        match cec(&golden, &broken) {
            CecResult::Counterexample(pis) => {
                // The witness must actually distinguish the networks.
                assert_ne!(golden.eval(&pis), broken.eval(&pis));
            }
            other => panic!("expected a counterexample, got {other}"),
        }
    }

    #[test]
    fn cec_detects_interface_mismatch() {
        let a = ripple_carry_adder(4);
        let b = ripple_carry_adder(5);
        assert_eq!(cec(&a, &b), CecResult::InterfaceMismatch);
    }

    #[test]
    fn structural_hashing_proves_identical_copies_without_sat() {
        // Identical networks share every node: the miter reduces to FALSE
        // structurally (covered by the early return).
        let net = ripple_carry_adder(16);
        assert_eq!(cec(&net, &net.clone()), CecResult::Equivalent);
    }

    #[test]
    fn cec_on_small_rewrites() {
        // y = ab + a'c vs the mux form: equivalent.
        let mut n1 = Network::new("sop");
        let a = n1.add_pi("a");
        let b = n1.add_pi("b");
        let c = n1.add_pi("c");
        let y = n1.add_node(
            "y",
            vec![a, b, c],
            Cover::from_cubes(
                3,
                [
                    cube(&[(0, true), (1, true)]),
                    cube(&[(0, false), (2, true)]),
                ],
            ),
        );
        n1.add_po("y", y);

        let mut n2 = Network::new("mux");
        let a2 = n2.add_pi("a");
        let b2 = n2.add_pi("b");
        let c2 = n2.add_pi("c");
        // mux(a, c, b): fanins (s=a, lo=c, hi=b).
        let y2 = n2.add_node(
            "y",
            vec![a2, c2, b2],
            Cover::from_cubes(
                3,
                [
                    cube(&[(0, false), (1, true)]),
                    cube(&[(0, true), (2, true)]),
                ],
            ),
        );
        n2.add_po("y", y2);
        assert_eq!(cec(&n1, &n2), CecResult::Equivalent);
    }
}
