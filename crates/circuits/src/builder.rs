//! A gate-level construction helper over [`Network`].

use als_logic::{Cover, Cube};
use als_network::{Network, NodeId};

/// Builds networks gate by gate. Every call adds one node whose SOP is the
/// gate function; algebraic factoring gives the factored form. Names are
/// generated from a per-builder counter, prefixed by the gate kind.
///
/// # Example
///
/// ```
/// use als_circuits::Builder;
///
/// let mut b = Builder::new("mux");
/// let s = b.pi("s");
/// let x = b.pi("x");
/// let y = b.pi("y");
/// let m = b.mux(s, x, y);
/// b.po("m", m);
/// let net = b.finish();
/// assert_eq!(net.eval(&[false, true, false]), vec![true]); // s=0 → x
/// assert_eq!(net.eval(&[true, true, false]), vec![false]); // s=1 → y
/// ```
#[derive(Debug)]
pub struct Builder {
    net: Network,
    counter: usize,
}

impl Builder {
    /// Starts a new network.
    pub fn new(name: impl Into<String>) -> Self {
        Builder {
            net: Network::new(name),
            counter: 0,
        }
    }

    fn fresh(&mut self, kind: &str) -> String {
        self.counter += 1;
        format!("{kind}_{}", self.counter)
    }

    /// Adds a primary input.
    pub fn pi(&mut self, name: impl Into<String>) -> NodeId {
        self.net.add_pi(name)
    }

    /// Declares a primary output.
    pub fn po(&mut self, name: impl Into<String>, driver: NodeId) {
        self.net.add_po(name, driver);
    }

    /// Finishes construction, returning the network.
    pub fn finish(self) -> Network {
        self.net
    }

    /// Direct access to the network under construction.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The widest gate emitted as a single node; wider requests become
    /// balanced trees. Keeps node fanins small, as in an optimized network
    /// (the paper notes factored forms usually stay under 5 literals).
    pub const MAX_ARITY: usize = 6;

    /// An n-ary AND gate (balanced tree of ≤ [`Builder::MAX_ARITY`]-input
    /// nodes).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn and(&mut self, inputs: &[NodeId]) -> NodeId {
        assert!(!inputs.is_empty(), "and() needs at least one input");
        if inputs.len() == 1 {
            return inputs[0];
        }
        if inputs.len() > Self::MAX_ARITY {
            let mut layer: Vec<NodeId> = Vec::new();
            for chunk in inputs.chunks(Self::MAX_ARITY) {
                layer.push(self.and(chunk));
            }
            return self.and(&layer);
        }
        let name = self.fresh("and");
        let lits: Vec<(usize, bool)> = (0..inputs.len()).map(|i| (i, true)).collect();
        let cover = Cover::from_cubes(
            inputs.len(),
            [Cube::from_literals(&lits).expect("distinct vars")], // lint:allow(panic): cube literals are valid by construction
        );
        self.net.add_node(name, inputs.to_vec(), cover)
    }

    /// An n-ary OR gate (balanced tree of ≤ [`Builder::MAX_ARITY`]-input
    /// nodes).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn or(&mut self, inputs: &[NodeId]) -> NodeId {
        assert!(!inputs.is_empty(), "or() needs at least one input");
        if inputs.len() == 1 {
            return inputs[0];
        }
        if inputs.len() > Self::MAX_ARITY {
            let mut layer: Vec<NodeId> = Vec::new();
            for chunk in inputs.chunks(Self::MAX_ARITY) {
                layer.push(self.or(chunk));
            }
            return self.or(&layer);
        }
        let name = self.fresh("or");
        let mut cover = Cover::new(inputs.len());
        for i in 0..inputs.len() {
            cover.push(Cube::from_literals(&[(i, true)]).expect("single literal"));
            // lint:allow(panic): cube literals are valid by construction
        }
        self.net.add_node(name, inputs.to_vec(), cover)
    }

    /// An inverter.
    pub fn not(&mut self, input: NodeId) -> NodeId {
        let name = self.fresh("inv");
        let cover = Cover::from_cubes(1, [Cube::from_literals(&[(0, false)]).expect("literal")]); // lint:allow(panic): cube literals are valid by construction
        self.net.add_node(name, vec![input], cover)
    }

    /// A 2-input XOR gate.
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let name = self.fresh("xor");
        let cover = Cover::from_cubes(
            2,
            [
                Cube::from_literals(&[(0, true), (1, false)]).expect("cube"), // lint:allow(panic): cube literals are valid by construction
                Cube::from_literals(&[(0, false), (1, true)]).expect("cube"), // lint:allow(panic): cube literals are valid by construction
            ],
        );
        self.net.add_node(name, vec![a, b], cover)
    }

    /// A 2-input XNOR gate.
    pub fn xnor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let name = self.fresh("xnor");
        let cover = Cover::from_cubes(
            2,
            [
                Cube::from_literals(&[(0, true), (1, true)]).expect("cube"), // lint:allow(panic): cube literals are valid by construction
                Cube::from_literals(&[(0, false), (1, false)]).expect("cube"), // lint:allow(panic): cube literals are valid by construction
            ],
        );
        self.net.add_node(name, vec![a, b], cover)
    }

    /// A balanced XOR tree over any number of inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn xor(&mut self, inputs: &[NodeId]) -> NodeId {
        assert!(!inputs.is_empty(), "xor() needs at least one input");
        let mut layer = inputs.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.xor2(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// A 2-input AND with one inverted input (`a AND NOT b`).
    pub fn and_not(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let name = self.fresh("andn");
        let cover = Cover::from_cubes(
            2,
            [Cube::from_literals(&[(0, true), (1, false)]).expect("cube")], // lint:allow(panic): cube literals are valid by construction
        );
        self.net.add_node(name, vec![a, b], cover)
    }

    /// A NOR gate.
    pub fn nor(&mut self, inputs: &[NodeId]) -> NodeId {
        let o = self.or(inputs);
        self.not(o)
    }

    /// A NAND gate.
    pub fn nand(&mut self, inputs: &[NodeId]) -> NodeId {
        let a = self.and(inputs);
        self.not(a)
    }

    /// A 3-input majority gate (full-adder carry).
    pub fn maj3(&mut self, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
        let name = self.fresh("maj");
        let cover = Cover::from_cubes(
            3,
            [
                Cube::from_literals(&[(0, true), (1, true)]).expect("cube"), // lint:allow(panic): cube literals are valid by construction
                Cube::from_literals(&[(0, true), (2, true)]).expect("cube"), // lint:allow(panic): cube literals are valid by construction
                Cube::from_literals(&[(1, true), (2, true)]).expect("cube"), // lint:allow(panic): cube literals are valid by construction
            ],
        );
        self.net.add_node(name, vec![a, b, c], cover)
    }

    /// A 2:1 multiplexer: `s ? hi : lo`.
    pub fn mux(&mut self, s: NodeId, lo: NodeId, hi: NodeId) -> NodeId {
        let name = self.fresh("mux");
        let cover = Cover::from_cubes(
            3,
            [
                Cube::from_literals(&[(0, false), (1, true)]).expect("cube"), // lint:allow(panic): cube literals are valid by construction
                Cube::from_literals(&[(0, true), (2, true)]).expect("cube"), // lint:allow(panic): cube literals are valid by construction
            ],
        );
        self.net.add_node(name, vec![s, lo, hi], cover)
    }

    /// A full adder; returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
        let s1 = self.xor2(a, b);
        let sum = self.xor2(s1, cin);
        let carry = self.maj3(a, b, cin);
        (sum, carry)
    }

    /// A half adder; returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        let sum = self.xor2(a, b);
        let carry = self.and(&[a, b]);
        (sum, carry)
    }

    /// A constant node.
    pub fn constant(&mut self, value: bool) -> NodeId {
        let name = self.fresh("const");
        self.net.add_constant(name, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval1(b: Builder, pis: &[bool]) -> bool {
        b.finish().eval(pis)[0]
    }

    #[test]
    fn basic_gates() {
        for (m, expect) in [
            (0b00u32, [false, false, false, true]),
            (0b01, [false, true, true, true]),
            (0b10, [false, true, true, true]),
            (0b11, [true, true, false, false]),
        ] {
            let mut b = Builder::new("g");
            let x = b.pi("x");
            let y = b.pi("y");
            let and = b.and(&[x, y]);
            let or = b.or(&[x, y]);
            let xor = b.xor2(x, y);
            let nand = b.nand(&[x, y]);
            b.po("and", and);
            b.po("or", or);
            b.po("xor", xor);
            b.po("nand", nand);
            let v = b.finish().eval(&[m & 1 == 1, m >> 1 & 1 == 1]);
            assert_eq!(v, expect, "inputs {m:02b}");
        }
    }

    #[test]
    fn xor_tree_parity() {
        for n in 1..=7 {
            for m in 0..(1u32 << n) {
                let mut b = Builder::new("p");
                let pis: Vec<NodeId> = (0..n).map(|i| b.pi(format!("x{i}"))).collect();
                let p = b.xor(&pis);
                b.po("p", p);
                let bits: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
                assert_eq!(eval1(b, &bits), m.count_ones() % 2 == 1, "n={n} m={m:b}");
            }
        }
    }

    #[test]
    fn full_adder_truth_table() {
        for m in 0..8u32 {
            let mut b = Builder::new("fa");
            let x = b.pi("x");
            let y = b.pi("y");
            let c = b.pi("c");
            let (s, co) = b.full_adder(x, y, c);
            b.po("s", s);
            b.po("co", co);
            let bits = [m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
            let total = m.count_ones();
            let v = b.finish().eval(&bits);
            assert_eq!(v[0], total % 2 == 1);
            assert_eq!(v[1], total >= 2);
        }
    }

    #[test]
    fn mux_selects() {
        for m in 0..8u32 {
            let mut b = Builder::new("m");
            let s = b.pi("s");
            let lo = b.pi("lo");
            let hi = b.pi("hi");
            let o = b.mux(s, lo, hi);
            b.po("o", o);
            let bits = [m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
            let expect = if bits[0] { bits[2] } else { bits[1] };
            assert_eq!(eval1(b, &bits), expect, "m={m:03b}");
        }
    }

    #[test]
    fn single_input_collapse() {
        let mut b = Builder::new("c");
        let x = b.pi("x");
        assert_eq!(b.and(&[x]), x);
        assert_eq!(b.or(&[x]), x);
        assert_eq!(b.xor(&[x]), x);
    }
}
