//! Benchmark-circuit generators for the ALS evaluation.
//!
//! The paper evaluates on MCNC/ISCAS-85 circuits and on arithmetic circuits
//! (Table 3). The original netlists are not redistributable, so this crate
//! *generates* functionally-equivalent circuit classes from scratch:
//!
//! * the arithmetic circuits exactly as named — [`ripple_carry_adder`],
//!   [`carry_lookahead_adder`], [`kogge_stone_adder`], [`array_multiplier`],
//!   [`wallace_tree_multiplier`];
//! * stand-ins for the MCNC/ISCAS circuits matching their documented
//!   function class — 8/9/12-bit ALUs, a 16-bit SEC/DED circuit, a 32-bit
//!   adder/comparator, and a 74181-style 4-bit ALU (see [`registry`]).
//!
//! Every generator is verified against integer arithmetic in its tests, so
//! the ALS algorithms approximate *correct* circuits.
//!
//! # Example
//!
//! ```
//! use als_circuits::adders::ripple_carry_adder;
//!
//! let net = ripple_carry_adder(8);
//! assert_eq!(net.num_pis(), 16);
//! assert_eq!(net.num_pos(), 9); // 8 sum bits + carry out
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod adders;
pub mod alu;
pub mod builder;
pub mod misc;
pub mod multipliers;
pub mod registry;
pub mod secded;

pub use adders::{carry_lookahead_adder, kogge_stone_adder, ripple_carry_adder};
pub use builder::Builder;
pub use multipliers::{array_multiplier, wallace_tree_multiplier};
pub use registry::{all_benchmarks, Benchmark};

#[cfg(test)]
pub(crate) mod testutil {
    use als_network::Network;

    /// Drives the first `a_bits + b_bits` PIs with the little-endian bits of
    /// `a` and `b` and returns the PO values as a little-endian integer.
    pub fn eval_binary(net: &Network, a: u64, a_bits: usize, b: u64, b_bits: usize) -> u64 {
        let mut pis = Vec::with_capacity(net.num_pis());
        for i in 0..a_bits {
            pis.push(a >> i & 1 == 1);
        }
        for i in 0..b_bits {
            pis.push(b >> i & 1 == 1);
        }
        assert_eq!(pis.len(), net.num_pis(), "PI width mismatch");
        let pos = net.eval(&pis);
        pos.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &v)| acc | (u64::from(v) << i))
    }
}
