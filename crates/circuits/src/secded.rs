//! A single-error-correcting, double-error-detecting (SEC/DED) circuit for
//! 16-bit data — the stand-in for the c1908 benchmark ("16-bit SEC/DED
//! circuit").
//!
//! The circuit receives a (22, 16) extended-Hamming codeword — 16 data bits
//! `d0..d15`, 5 Hamming check bits `c0..c4` and one overall parity bit `p` —
//! recomputes the syndrome, corrects a single flipped data bit, and flags
//! uncorrectable double errors: 22 PIs, 18 POs (16 corrected data bits,
//! `single_err`, `double_err`).

use crate::Builder;
use als_network::{Network, NodeId};

/// Codeword position of data bit `d`: data bits occupy the
/// non-power-of-two positions 3, 5, 6, 7, 9, … (check bit `k` owns position
/// `2^k`, so a power-of-two syndrome means a check-bit error and is never
/// decoded as a data correction).
fn data_position(d: usize) -> usize {
    let mut pos = 2usize;
    let mut remaining = d + 1;
    loop {
        pos += 1;
        if !pos.is_power_of_two() {
            remaining -= 1;
            if remaining == 0 {
                return pos;
            }
        }
    }
}

/// Whether Hamming check bit `k` covers data bit `d`.
fn check_covers(k: usize, d: usize) -> bool {
    data_position(d) >> k & 1 == 1
}

/// Builds the 16-bit SEC/DED corrector.
pub fn sec_ded_16() -> Network {
    let n = 16usize;
    let checks = 5usize;
    let mut b = Builder::new("SECDED16");
    let data: Vec<NodeId> = (0..n).map(|i| b.pi(format!("d{i}"))).collect();
    let check: Vec<NodeId> = (0..checks).map(|i| b.pi(format!("c{i}"))).collect();
    let parity = b.pi("p");

    // Syndrome: s_k = c_k ⊕ parity of covered data bits.
    let mut syndrome = Vec::with_capacity(checks);
    #[allow(clippy::needless_range_loop)] // the index is semantic here
    for k in 0..checks {
        let mut covered: Vec<NodeId> = (0..n)
            .filter(|&d| check_covers(k, d))
            .map(|d| data[d])
            .collect();
        covered.push(check[k]);
        syndrome.push(b.xor(&covered));
    }

    // Overall parity of the received word (data + checks + parity bit).
    let mut all: Vec<NodeId> = data.clone();
    all.extend_from_slice(&check);
    all.push(parity);
    let overall = b.xor(&all);

    // Decode: data bit d is flipped iff the syndrome equals its position.
    let any_syndrome = b.or(&syndrome);
    let mut corrected = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // the index is semantic here
    for d in 0..n {
        let pattern = data_position(d);
        let match_bits: Vec<NodeId> = (0..checks)
            .map(|k| {
                if pattern >> k & 1 == 1 {
                    syndrome[k]
                } else {
                    b.not(syndrome[k])
                }
            })
            .collect();
        let is_this = b.and(&match_bits);
        // Only correct when the overall parity also fired (single error).
        let flip = b.and(&[is_this, overall]);
        corrected.push(b.xor2(data[d], flip));
    }

    // single error: overall parity odd (any single flip, incl. check bits);
    // double error: syndrome non-zero but overall parity even.
    let single_err = overall;
    let double_err = b.and_not(any_syndrome, overall);

    for (i, &c) in corrected.iter().enumerate() {
        b.po(format!("o{i}"), c);
    }
    b.po("single_err", single_err);
    b.po("double_err", double_err);
    b.finish()
}

/// Encodes 16 data bits into the (22, 16) codeword used by [`sec_ded_16`]:
/// returns `(check_bits, parity)` as plain booleans — a software reference
/// encoder for tests and workload generation.
pub fn encode_reference(data: u16) -> ([bool; 5], bool) {
    let mut check = [false; 5];
    for (k, c) in check.iter_mut().enumerate() {
        let mut acc = false;
        for d in 0..16 {
            if check_covers(k, d) && data >> d & 1 == 1 {
                acc = !acc;
            }
        }
        *c = acc;
    }
    let mut parity = data.count_ones() % 2 == 1;
    for &c in &check {
        if c {
            parity = !parity;
        }
    }
    (check, parity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(net: &Network, data: u16, check: [bool; 5], parity: bool) -> (u16, bool, bool) {
        let mut pis: Vec<bool> = (0..16).map(|i| data >> i & 1 == 1).collect();
        pis.extend_from_slice(&check);
        pis.push(parity);
        let out = net.eval(&pis);
        let corrected = out[..16]
            .iter()
            .enumerate()
            .fold(0u16, |acc, (i, &v)| acc | (u16::from(v) << i));
        (corrected, out[16], out[17])
    }

    #[test]
    fn clean_codewords_pass_through() {
        let net = sec_ded_16();
        assert_eq!(net.num_pis(), 22);
        assert_eq!(net.num_pos(), 18);
        net.check().unwrap();
        let mut state = 1u64;
        for _ in 0..50 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let data = state as u16;
            let (check, parity) = encode_reference(data);
            let (corrected, single, double) = run(&net, data, check, parity);
            assert_eq!(corrected, data, "clean word {data:#06x}");
            assert!(!single, "no single-error flag on clean word");
            assert!(!double, "no double-error flag on clean word");
        }
    }

    #[test]
    fn single_data_bit_errors_corrected() {
        let net = sec_ded_16();
        let mut state = 99u64;
        for _ in 0..20 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let data = state as u16;
            let (check, parity) = encode_reference(data);
            for flip in 0..16 {
                let received = data ^ (1 << flip);
                let (corrected, single, double) = run(&net, received, check, parity);
                assert_eq!(corrected, data, "flip d{flip} of {data:#06x}");
                assert!(single, "single-error flag");
                assert!(!double, "no double-error flag");
            }
        }
    }

    #[test]
    fn check_bit_errors_flagged_without_corrupting_data() {
        let net = sec_ded_16();
        let data = 0xBEEF;
        let (check, parity) = encode_reference(data);
        for flip in 0..5 {
            let mut c = check;
            c[flip] = !c[flip];
            let (corrected, single, _double) = run(&net, data, c, parity);
            assert_eq!(corrected, data, "check-bit flip {flip}");
            assert!(single);
        }
        // Parity-bit flip: detected, data untouched.
        let (corrected, single, double) = run(&net, data, check, !parity);
        assert_eq!(corrected, data);
        assert!(single);
        assert!(!double);
    }

    #[test]
    fn double_errors_detected_not_miscorrected() {
        let net = sec_ded_16();
        let data = 0x1234;
        let (check, parity) = encode_reference(data);
        // Flip two data bits.
        for (f1, f2) in [(0, 5), (3, 11), (7, 15)] {
            let received = data ^ (1 << f1) ^ (1 << f2);
            let (corrected, _single, double) = run(&net, received, check, parity);
            assert!(double, "double-error flag for flips {f1},{f2}");
            // With even overall parity no correction is applied.
            assert_eq!(corrected, received, "no (mis)correction on double error");
        }
    }
}
