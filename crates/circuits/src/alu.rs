//! ALU and datapath generators standing in for the paper's MCNC/ISCAS
//! benchmarks (Table 3): c880/c3540-class 8-bit ALUs, a c5315-class 9-bit
//! ALU, a c2670-class 12-bit ALU-with-controller, a c7552-class 32-bit
//! adder/comparator, and a 74181-style 4-bit ALU for the `alu4` slot.

use crate::Builder;
use als_network::{Network, NodeId};

fn word_pis(b: &mut Builder, prefix: &str, n: usize) -> Vec<NodeId> {
    (0..n).map(|i| b.pi(format!("{prefix}{i}"))).collect()
}

fn word_pos(b: &mut Builder, prefix: &str, bits: &[NodeId]) {
    for (i, &bit) in bits.iter().enumerate() {
        b.po(format!("{prefix}{i}"), bit);
    }
}

/// Builds an adder/subtractor slice: returns `(sum_bits, carry_out)` for
/// `a + (b ⊕ sub) + sub`.
fn add_sub(b: &mut Builder, a: &[NodeId], bb: &[NodeId], sub: NodeId) -> (Vec<NodeId>, NodeId) {
    let n = a.len();
    let mut sums = Vec::with_capacity(n);
    let mut carry = sub; // carry-in = 1 for subtraction (two's complement)
    for i in 0..n {
        let bx = b.xor2(bb[i], sub);
        let (s, c) = b.full_adder(a[i], bx, carry);
        sums.push(s);
        carry = c;
    }
    (sums, carry)
}

/// An `n`-bit ALU with ops selected by 3 opcode bits:
/// `000 ADD, 001 SUB, 010 AND, 011 OR, 100 XOR, 101 NOT a, 110 pass a,
/// 111 pass b`. Outputs: `n` result bits, carry-out, and a zero flag.
///
/// At `n = 8` this is the stand-in for the c880 benchmark ("8-bit ALU").
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn alu(n: usize) -> Network {
    assert!(n > 0, "alu width must be positive");
    let mut b = Builder::new(format!("ALU{n}"));
    let a = word_pis(&mut b, "a", n);
    let bb = word_pis(&mut b, "b", n);
    let op = word_pis(&mut b, "op", 3);

    let sub = op[0]; // for the arithmetic group, op0 distinguishes add/sub
    let (arith, carry) = add_sub(&mut b, &a, &bb, sub);
    let and_bits: Vec<NodeId> = (0..n).map(|i| b.and(&[a[i], bb[i]])).collect();
    let or_bits: Vec<NodeId> = (0..n).map(|i| b.or(&[a[i], bb[i]])).collect();
    let xor_bits: Vec<NodeId> = (0..n).map(|i| b.xor2(a[i], bb[i])).collect();
    let not_bits: Vec<NodeId> = (0..n).map(|i| b.not(a[i])).collect();

    // Two mux levels: op1 selects within pairs, op2 selects between groups.
    let mut result = Vec::with_capacity(n);
    for i in 0..n {
        // Group 0 (op2 = 0): op1 ? logic(and/or) : arith(add/sub)
        //   op1=0 → arith (op0 chooses add/sub)
        //   op1=1 → op0 ? or : and
        let logic01 = b.mux(op[0], and_bits[i], or_bits[i]);
        let group0 = b.mux(op[1], arith[i], logic01);
        // Group 1 (op2 = 1): op1=0 → op0 ? not : xor; op1=1 → op0 ? b : a
        let xornot = b.mux(op[0], xor_bits[i], not_bits[i]);
        let passes = b.mux(op[0], a[i], bb[i]);
        let group1 = b.mux(op[1], xornot, passes);
        result.push(b.mux(op[2], group0, group1));
    }

    let zero = {
        let any = b.or(&result);
        b.not(any)
    };
    word_pos(&mut b, "f", &result);
    b.po("cout", carry);
    b.po("zero", zero);
    b.finish()
}

/// An `n`-bit ALU-with-controller: the ALU above plus a small combinational
/// control block that decodes a 4-bit instruction field into the ALU opcode
/// and a result mask, in the spirit of the c2670 benchmark
/// ("12-bit ALU and controller") at `n = 12`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn alu_with_controller(n: usize) -> Network {
    assert!(n > 0, "alu width must be positive");
    let mut b = Builder::new(format!("ALUC{n}"));
    let a = word_pis(&mut b, "a", n);
    let bb = word_pis(&mut b, "b", n);
    let instr = word_pis(&mut b, "ir", 4);
    let enable = b.pi("en");

    // Controller: decode instr into op bits, a force-zero control and a
    // condition flag tree.
    let ni: Vec<NodeId> = instr.iter().map(|&i| b.not(i)).collect();
    let op0 = b.xor2(instr[0], instr[3]);
    let op1 = b.and(&[instr[1], ni[3]]);
    let op2 = b.or(&[instr[2], instr[3]]);
    let force_zero = b.and(&[instr[3], instr[2], instr[1], instr[0]]); // ir=1111

    let sub = op0;
    let (arith, carry) = add_sub(&mut b, &a, &bb, sub);
    let and_bits: Vec<NodeId> = (0..n).map(|i| b.and(&[a[i], bb[i]])).collect();
    let or_bits: Vec<NodeId> = (0..n).map(|i| b.or(&[a[i], bb[i]])).collect();
    let xor_bits: Vec<NodeId> = (0..n).map(|i| b.xor2(a[i], bb[i])).collect();

    let mut result = Vec::with_capacity(n);
    for i in 0..n {
        let logic01 = b.mux(op0, and_bits[i], or_bits[i]);
        let group0 = b.mux(op1, arith[i], logic01);
        let group1 = b.mux(op1, xor_bits[i], a[i]);
        let selected = b.mux(op2, group0, group1);
        // Gate by enable and the force-zero control.
        let gated = b.and_not(selected, force_zero);
        result.push(b.and(&[gated, enable]));
    }

    // Status outputs from the controller.
    let zero = {
        let any = b.or(&result);
        b.not(any)
    };
    let parity = b.xor(&result);
    word_pos(&mut b, "f", &result);
    b.po("cout", carry);
    b.po("zero", zero);
    b.po("parity", parity);
    b.finish()
}

/// A 32-bit adder/comparator in the spirit of c7552: a ripple-carry adder
/// plus equality and less-than comparisons of the two operands.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn adder_comparator(n: usize) -> Network {
    assert!(n > 0, "width must be positive");
    let mut b = Builder::new(format!("ADDCMP{n}"));
    let a = word_pis(&mut b, "a", n);
    let bb = word_pis(&mut b, "b", n);

    // Adder.
    let mut sums = Vec::with_capacity(n);
    let (s0, mut carry) = b.half_adder(a[0], bb[0]);
    sums.push(s0);
    for i in 1..n {
        let (s, c) = b.full_adder(a[i], bb[i], carry);
        sums.push(s);
        carry = c;
    }

    // Equality: AND of per-bit XNORs.
    let eq_bits: Vec<NodeId> = (0..n).map(|i| b.xnor2(a[i], bb[i])).collect();
    let equal = b.and(&eq_bits);

    // Less-than (a < b), scanned from the MSB: at the first differing bit,
    // b must be 1. `eq_prefix` tracks equality of all bits above `i`.
    let mut lt = b.and_not(bb[n - 1], a[n - 1]);
    let mut eq_prefix = eq_bits[n - 1];
    for i in (0..n - 1).rev() {
        let b_gt_a = b.and_not(bb[i], a[i]);
        let here = b.and(&[eq_prefix, b_gt_a]);
        lt = b.or(&[lt, here]);
        if i > 0 {
            eq_prefix = b.and(&[eq_prefix, eq_bits[i]]);
        }
    }
    word_pos(&mut b, "s", &sums);
    b.po("cout", carry);
    b.po("eq", equal);
    b.po("lt", lt);
    b.finish()
}

/// A 74181-style 4-bit ALU slice for the `alu4` slot: inputs
/// `a0..3, b0..3, s0..3 (function select), m (mode), cin` — 14 PIs; outputs
/// `f0..3, cout, p (propagate), g (generate), aeqb` — 8 POs.
///
/// The select encodings follow this generate/propagate construction rather
/// than the exact datasheet table (e.g. `s = 1001, m = 0` is *A plus B*,
/// and the same select with `m = 1` is *A xor B*); the circuit class and
/// I/O shape match the MCNC `alu4` slot.
pub fn alu_74181() -> Network {
    let mut b = Builder::new("ALU74181");
    let a = word_pis(&mut b, "a", 4);
    let bb = word_pis(&mut b, "b", 4);
    let s = word_pis(&mut b, "s", 4);
    let m = b.pi("m");
    let cin = b.pi("cin");

    // Per the 74181 structure: internal terms
    //   x_i = NOT(a_i + s0·b_i + s1·b_i')
    //   y_i = NOT(a_i·s3·b_i + a_i·s2·b_i')
    let nb: Vec<NodeId> = bb.iter().map(|&x| b.not(x)).collect();
    let mut xs = Vec::with_capacity(4);
    let mut ys = Vec::with_capacity(4);
    for i in 0..4 {
        let t1 = b.and(&[s[0], bb[i]]);
        let t2 = b.and(&[s[1], nb[i]]);
        let x = b.nor(&[a[i], t1, t2]);
        xs.push(x);
        let t3 = b.and(&[a[i], s[3], bb[i]]);
        let t4 = b.and(&[a[i], s[2], nb[i]]);
        let y = b.nor(&[t3, t4]);
        ys.push(y);
    }

    // Carry chain (active-low internals; mode m suppresses carries).
    let not_m = b.not(m);
    let mut carries = Vec::with_capacity(4); // carry INTO each bit (true form)
    let mut carry = cin;
    for i in 0..4 {
        carries.push(carry);
        // c_{i+1} = y_i · (x_i ∨ c_i)  — generate/propagate form:
        // the 74181's y is "not generate", x is "not propagate"; in true
        // form: gen_i = NOT y_i, prop_i = NOT x_i.
        let gen = b.not(ys[i]);
        let prop = b.not(xs[i]);
        let pc = b.and(&[prop, carry]);
        carry = b.or(&[gen, pc]);
    }
    let cout = carry;

    // f_i = (x_i ⊕ y_i) ⊕ (NOT m · c_i)  with the 74181's sum form
    // f_i = prop_i ⊕ gen_i' ... we use the equivalent true-logic form:
    // logic result r_i = x_i ⊕ y_i; arithmetic adds the carry.
    let mut f = Vec::with_capacity(4);
    for i in 0..4 {
        let r = b.xor2(xs[i], ys[i]);
        let gated_c = b.and(&[not_m, carries[i]]);
        f.push(b.xor2(r, gated_c));
    }

    let p = b.and(&xs);
    let g = {
        // Group generate: any stage generating with all later propagating.
        let mut terms = Vec::new();
        for i in 0..4 {
            let mut factors = vec![b.not(ys[i])];
            for x in &xs[i + 1..] {
                let prop = b.not(*x);
                factors.push(prop);
            }
            terms.push(b.and(&factors));
        }
        b.or(&terms)
    };
    let aeqb = b.and(&f);

    word_pos(&mut b, "f", &f);
    b.po("cout", cout);
    b.po("p", p);
    b.po("g", g);
    b.po("aeqb", aeqb);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(net: &Network, pis: &[bool]) -> Vec<bool> {
        net.eval(pis)
    }

    fn bits(v: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| v >> i & 1 == 1).collect()
    }

    fn word(v: &[bool]) -> u64 {
        v.iter()
            .enumerate()
            .fold(0, |acc, (i, &x)| acc | (u64::from(x) << i))
    }

    #[test]
    fn alu8_all_ops_random_operands() {
        let net = alu(8);
        assert_eq!(net.num_pis(), 19);
        assert_eq!(net.num_pos(), 10);
        net.check().unwrap();
        let mut state = 42u64;
        for _ in 0..40 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let a = state & 0xFF;
            let bb = (state >> 11) & 0xFF;
            for op in 0..8u64 {
                let mut pis = bits(a, 8);
                pis.extend(bits(bb, 8));
                pis.extend(bits(op, 3));
                let out = eval(&net, &pis);
                let f = word(&out[..8]);
                let expect = match op {
                    0 => (a + bb) & 0xFF,
                    1 => a.wrapping_sub(bb) & 0xFF,
                    2 => a & bb,
                    3 => a | bb,
                    4 => a ^ bb,
                    5 => !a & 0xFF,
                    6 => a,
                    _ => bb,
                };
                assert_eq!(f, expect, "op {op}: a={a} b={bb}");
                assert_eq!(out[9], f == 0, "zero flag, op {op}");
            }
        }
    }

    #[test]
    fn alu_carry_out_add() {
        let net = alu(4);
        // 0xF + 0x1 = 0x10: carry out set.
        let mut pis = bits(0xF, 4);
        pis.extend(bits(0x1, 4));
        pis.extend(bits(0, 3)); // ADD
        let out = eval(&net, &pis);
        assert_eq!(word(&out[..4]), 0);
        assert!(out[4], "carry out");
    }

    #[test]
    fn alu_with_controller_basics() {
        let net = alu_with_controller(12);
        assert_eq!(net.num_pis(), 12 + 12 + 4 + 1);
        assert_eq!(net.num_pos(), 12 + 3);
        net.check().unwrap();
        // enable = 0 forces the result bus (and parity) to 0, zero flag to 1.
        let mut pis = bits(0xABC, 12);
        pis.extend(bits(0x123, 12));
        pis.extend(bits(0b0000, 4));
        pis.push(false);
        let out = eval(&net, &pis);
        assert_eq!(word(&out[..12]), 0);
        assert!(out[13], "zero flag with bus disabled");
        assert!(!out[14], "parity of zero bus");
        // ir=1111 forces zero even when enabled.
        let mut pis = bits(0xFFF, 12);
        pis.extend(bits(0xFFF, 12));
        pis.extend(bits(0b1111, 4));
        pis.push(true);
        let out = eval(&net, &pis);
        assert_eq!(word(&out[..12]), 0);
    }

    #[test]
    fn alu_with_controller_add_path() {
        let net = alu_with_controller(12);
        // ir = 0000 → op=(0,0,0) → arithmetic add, enabled.
        let mut state = 99u64;
        for _ in 0..30 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let a = state & 0xFFF;
            let bb = (state >> 17) & 0xFFF;
            let mut pis = bits(a, 12);
            pis.extend(bits(bb, 12));
            pis.extend(bits(0, 4));
            pis.push(true);
            let out = eval(&net, &pis);
            assert_eq!(word(&out[..12]), (a + bb) & 0xFFF, "{a}+{bb}");
        }
    }

    #[test]
    fn adder_comparator_matches_integers() {
        let net = adder_comparator(32);
        assert_eq!(net.num_pis(), 64);
        assert_eq!(net.num_pos(), 35);
        net.check().unwrap();
        let mut state = 5u64;
        let mut cases = vec![
            (0u64, 0u64),
            (u64::from(u32::MAX), 1),
            (7, 7),
            (3, 9),
            (9, 3),
        ];
        for _ in 0..40 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            cases.push((state & 0xFFFF_FFFF, (state >> 29) & 0xFFFF_FFFF));
        }
        for (a, bb) in cases {
            let mut pis = bits(a, 32);
            pis.extend(bits(bb, 32));
            let out = eval(&net, &pis);
            assert_eq!(word(&out[..32]), (a + bb) & 0xFFFF_FFFF, "sum {a}+{bb}");
            assert_eq!(out[32], a + bb > u64::from(u32::MAX), "cout {a}+{bb}");
            assert_eq!(out[33], a == bb, "eq {a},{bb}");
            assert_eq!(out[34], a < bb, "lt {a},{bb}");
        }
    }

    #[test]
    fn alu74181_add_mode() {
        // With s = 1001 and m = 0, the 74181 computes F = A plus B (plus cin).
        let net = alu_74181();
        assert_eq!(net.num_pis(), 14);
        assert_eq!(net.num_pos(), 8);
        net.check().unwrap();
        for a in 0..16u64 {
            for bv in 0..16u64 {
                for cin in [false, true] {
                    let mut pis = bits(a, 4);
                    pis.extend(bits(bv, 4));
                    pis.extend(bits(0b1001, 4));
                    pis.push(false); // m = 0: arithmetic
                    pis.push(cin);
                    let out = eval(&net, &pis);
                    let total = a + bv + u64::from(cin);
                    assert_eq!(word(&out[..4]), total & 0xF, "a={a} b={bv} cin={cin}");
                    assert_eq!(out[4], total > 0xF, "cout a={a} b={bv} cin={cin}");
                }
            }
        }
    }

    #[test]
    fn alu74181_logic_xor_mode() {
        // In this generate/propagate construction, the add select
        // (s0=1, s3=1) with m = 1 suppresses the carry chain and leaves the
        // per-bit sum — F = A XOR B.
        let net = alu_74181();
        for a in 0..16u64 {
            for bv in 0..16u64 {
                let mut pis = bits(a, 4);
                pis.extend(bits(bv, 4));
                pis.extend(bits(0b1001, 4));
                pis.push(true); // m = 1: logic
                pis.push(false);
                let out = eval(&net, &pis);
                assert_eq!(word(&out[..4]), a ^ bv, "a={a} b={bv}");
                // aeqb is the AND of the F bits: F = a⊕b is all-ones
                // exactly when a = NOT b.
                assert_eq!(out[7], a ^ bv == 0xF, "aeqb a={a} b={bv}");
            }
        }
    }
}
