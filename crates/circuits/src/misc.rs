//! Additional circuit generators beyond the paper's Table 3 — useful for
//! wider testing and as extra ALS workloads (decoders and encoders are
//! classic error-tolerant structures).

use crate::Builder;
use als_network::{Network, NodeId};

/// An `n`-to-`2^n` one-hot decoder with an enable input: output `j` is high
/// iff the `n` select bits encode `j` and `en` is high.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 16`.
pub fn decoder(n: usize) -> Network {
    assert!(n > 0 && n <= 16, "decoder width out of range");
    let mut b = Builder::new(format!("DEC{n}"));
    let sel: Vec<NodeId> = (0..n).map(|i| b.pi(format!("s{i}"))).collect();
    let en = b.pi("en");
    let nsel: Vec<NodeId> = sel.iter().map(|&s| b.not(s)).collect();
    for j in 0..(1usize << n) {
        let mut terms: Vec<NodeId> = (0..n)
            .map(|i| if j >> i & 1 == 1 { sel[i] } else { nsel[i] })
            .collect();
        terms.push(en);
        let out = b.and(&terms);
        b.po(format!("o{j}"), out);
    }
    b.finish()
}

/// A `2^n`-input priority encoder: outputs the index of the highest-priority
/// (highest-numbered) asserted input, plus a `valid` flag.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 5`.
pub fn priority_encoder(n: usize) -> Network {
    assert!(n > 0 && n <= 5, "priority encoder width out of range");
    let num_inputs = 1usize << n;
    let mut b = Builder::new(format!("PRIENC{num_inputs}"));
    let req: Vec<NodeId> = (0..num_inputs).map(|i| b.pi(format!("r{i}"))).collect();

    // higher[i] = OR of requests with index > i.
    let mut higher: Vec<Option<NodeId>> = vec![None; num_inputs];
    let mut acc: Option<NodeId> = None;
    for i in (0..num_inputs).rev() {
        higher[i] = acc;
        acc = Some(match acc {
            None => req[i],
            Some(h) => b.or(&[h, req[i]]),
        });
    }
    let valid = acc.expect("at least one input"); // lint:allow(panic): internal invariant; the message states it

    // grant[i] = req[i] AND no higher request.
    let grants: Vec<NodeId> = (0..num_inputs)
        .map(|i| match higher[i] {
            None => req[i],
            Some(h) => b.and_not(req[i], h),
        })
        .collect();

    // Encode the one-hot grants.
    for bit in 0..n {
        let contributing: Vec<NodeId> = (0..num_inputs)
            .filter(|i| i >> bit & 1 == 1)
            .map(|i| grants[i])
            .collect();
        let o = b.or(&contributing);
        b.po(format!("idx{bit}"), o);
    }
    b.po("valid", valid);
    b.finish()
}

/// An `n`-input odd-parity checker (a balanced XOR tree) — the
/// hardest-to-approximate circuit class: every input flip is observable.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn parity_checker(n: usize) -> Network {
    assert!(n > 0, "parity width must be positive");
    let mut b = Builder::new(format!("PARITY{n}"));
    let pis: Vec<NodeId> = (0..n).map(|i| b.pi(format!("x{i}"))).collect();
    let p = b.xor(&pis);
    b.po("parity", p);
    b.finish()
}

/// A binary-to-Gray-code converter for `n` bits.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_to_gray(n: usize) -> Network {
    assert!(n > 0, "width must be positive");
    let mut b = Builder::new(format!("B2G{n}"));
    let pis: Vec<NodeId> = (0..n).map(|i| b.pi(format!("b{i}"))).collect();
    for i in 0..n {
        let g = if i + 1 < n {
            b.xor2(pis[i], pis[i + 1])
        } else {
            pis[i]
        };
        b.po(format!("g{i}"), g);
    }
    b.finish()
}

/// A triple-modular-redundancy majority voter over three `n`-bit words.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn tmr_voter(n: usize) -> Network {
    assert!(n > 0, "width must be positive");
    let mut b = Builder::new(format!("TMR{n}"));
    let a: Vec<NodeId> = (0..n).map(|i| b.pi(format!("a{i}"))).collect();
    let c: Vec<NodeId> = (0..n).map(|i| b.pi(format!("b{i}"))).collect();
    let d: Vec<NodeId> = (0..n).map(|i| b.pi(format!("c{i}"))).collect();
    for i in 0..n {
        let m = b.maj3(a[i], c[i], d[i]);
        b.po(format!("o{i}"), m);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_is_one_hot() {
        let net = decoder(3);
        assert_eq!(net.num_pis(), 4);
        assert_eq!(net.num_pos(), 8);
        for sel in 0..8usize {
            for en in [false, true] {
                let mut pis: Vec<bool> = (0..3).map(|i| sel >> i & 1 == 1).collect();
                pis.push(en);
                let out = net.eval(&pis);
                for (j, &o) in out.iter().enumerate() {
                    assert_eq!(o, en && j == sel, "sel={sel} en={en} out{j}");
                }
            }
        }
    }

    #[test]
    fn priority_encoder_picks_highest() {
        let net = priority_encoder(3);
        assert_eq!(net.num_pis(), 8);
        assert_eq!(net.num_pos(), 4);
        for mask in 0..256u32 {
            let pis: Vec<bool> = (0..8).map(|i| mask >> i & 1 == 1).collect();
            let out = net.eval(&pis);
            let idx = usize::from(out[0]) | usize::from(out[1]) << 1 | usize::from(out[2]) << 2;
            let valid = out[3];
            if mask == 0 {
                assert!(!valid, "no request, no valid");
            } else {
                let expect = 31 - mask.leading_zeros() as usize;
                assert!(valid);
                assert_eq!(idx, expect, "mask {mask:08b}");
            }
        }
    }

    #[test]
    fn parity_matches_popcount() {
        let net = parity_checker(6);
        for m in 0..64u32 {
            let pis: Vec<bool> = (0..6).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(net.eval(&pis), vec![m.count_ones() % 2 == 1]);
        }
    }

    #[test]
    fn gray_code_roundtrip() {
        let net = binary_to_gray(4);
        for v in 0..16u32 {
            let pis: Vec<bool> = (0..4).map(|i| v >> i & 1 == 1).collect();
            let out = net.eval(&pis);
            let gray = out
                .iter()
                .enumerate()
                .fold(0u32, |acc, (i, &b)| acc | (u32::from(b) << i));
            assert_eq!(gray, v ^ (v >> 1), "v={v}");
        }
    }

    #[test]
    fn tmr_votes_out_single_faults() {
        let net = tmr_voter(4);
        let word = 0b1010u32;
        for victim in 0..3 {
            for flip in 0..4 {
                let mut words = [word, word, word];
                words[victim] ^= 1 << flip;
                let mut pis = Vec::new();
                for w in words {
                    for i in 0..4 {
                        pis.push(w >> i & 1 == 1);
                    }
                }
                let out = net.eval(&pis);
                let voted = out
                    .iter()
                    .enumerate()
                    .fold(0u32, |acc, (i, &b)| acc | (u32::from(b) << i));
                assert_eq!(voted, word, "victim {victim} flip {flip}");
            }
        }
    }
}
