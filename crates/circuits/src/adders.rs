//! Adder generators: ripple-carry, carry-lookahead and Kogge–Stone.
//!
//! All three take two `n`-bit little-endian operands on PIs
//! `a0..a(n-1), b0..b(n-1)` and expose `n` sum bits plus the carry-out
//! (`n + 1` POs), so they are drop-in replacements for each other — exactly
//! the RCA32 / CLA32 / KSA32 trio of the paper's Table 3.

use crate::Builder;
use als_network::{Network, NodeId};

fn operand_pis(b: &mut Builder, n: usize) -> (Vec<NodeId>, Vec<NodeId>) {
    let a: Vec<NodeId> = (0..n).map(|i| b.pi(format!("a{i}"))).collect();
    let bb: Vec<NodeId> = (0..n).map(|i| b.pi(format!("b{i}"))).collect();
    (a, bb)
}

fn sum_pos(b: &mut Builder, sums: &[NodeId], cout: NodeId) {
    for (i, &s) in sums.iter().enumerate() {
        b.po(format!("s{i}"), s);
    }
    b.po("cout", cout);
}

/// An `n`-bit ripple-carry adder (the paper's RCA32 at `n = 32`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ripple_carry_adder(n: usize) -> Network {
    assert!(n > 0, "adder width must be positive");
    let mut b = Builder::new(format!("RCA{n}"));
    let (a, bb) = operand_pis(&mut b, n);
    let mut sums = Vec::with_capacity(n);
    let (s0, mut carry) = b.half_adder(a[0], bb[0]);
    sums.push(s0);
    for i in 1..n {
        let (s, c) = b.full_adder(a[i], bb[i], carry);
        sums.push(s);
        carry = c;
    }
    sum_pos(&mut b, &sums, carry);
    b.finish()
}

/// An `n`-bit carry-lookahead adder with 4-bit lookahead groups rippled
/// together (the paper's CLA32 at `n = 32`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn carry_lookahead_adder(n: usize) -> Network {
    assert!(n > 0, "adder width must be positive");
    let mut b = Builder::new(format!("CLA{n}"));
    let (a, bb) = operand_pis(&mut b, n);

    // Bit-level propagate/generate.
    let p: Vec<NodeId> = (0..n).map(|i| b.xor2(a[i], bb[i])).collect();
    let g: Vec<NodeId> = (0..n).map(|i| b.and(&[a[i], bb[i]])).collect();

    let mut carries: Vec<NodeId> = Vec::with_capacity(n + 1);
    let c0 = b.constant(false);
    carries.push(c0);
    // 4-bit groups with full lookahead inside the group:
    // c[i+1] = g[i] + p[i]g[i-1] + ... + p[i..j]·c_group_in
    let mut group_start = 0;
    while group_start < n {
        let group_end = (group_start + 4).min(n);
        let cin = carries[group_start];
        for i in group_start..group_end {
            // c[i+1] = OR over k in group_start..=i of (g[k] · p[k+1..=i]) OR (cin · p[group_start..=i])
            let mut terms: Vec<NodeId> = Vec::new();
            for k in group_start..=i {
                let mut factors = vec![g[k]];
                factors.extend_from_slice(&p[k + 1..=i]);
                terms.push(b.and(&factors));
            }
            let mut cin_factors = vec![cin];
            cin_factors.extend_from_slice(&p[group_start..=i]);
            terms.push(b.and(&cin_factors));
            carries.push(b.or(&terms));
        }
        group_start = group_end;
    }

    let sums: Vec<NodeId> = (0..n).map(|i| b.xor2(p[i], carries[i])).collect();
    let cout = carries[n];
    sum_pos(&mut b, &sums, cout);
    let mut net = b.finish();
    net.propagate_constants();
    net
}

/// An `n`-bit Kogge–Stone parallel-prefix adder (the paper's KSA32 at
/// `n = 32`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn kogge_stone_adder(n: usize) -> Network {
    assert!(n > 0, "adder width must be positive");
    let mut b = Builder::new(format!("KSA{n}"));
    let (a, bb) = operand_pis(&mut b, n);

    let p0: Vec<NodeId> = (0..n).map(|i| b.xor2(a[i], bb[i])).collect();
    let g0: Vec<NodeId> = (0..n).map(|i| b.and(&[a[i], bb[i]])).collect();

    // Prefix tree: (G, P) ∘ (G', P') = (G ∨ P·G', P·P').
    let mut g = g0.clone();
    let mut p = p0.clone();
    let mut dist = 1;
    while dist < n {
        let mut ng = g.clone();
        let mut np = p.clone();
        for i in dist..n {
            let pg = b.and(&[p[i], g[i - dist]]);
            ng[i] = b.or(&[g[i], pg]);
            np[i] = b.and(&[p[i], p[i - dist]]);
        }
        g = ng;
        p = np;
        dist *= 2;
    }

    // carries[i] = group-generate of bits 0..=i-1; c[0] = 0.
    let mut sums = Vec::with_capacity(n);
    sums.push(p0[0]);
    for i in 1..n {
        sums.push(b.xor2(p0[i], g[i - 1]));
    }
    let cout = g[n - 1];
    sum_pos(&mut b, &sums, cout);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::eval_binary;

    fn check_adder(net: &Network, n: usize) {
        assert_eq!(net.num_pis(), 2 * n);
        assert_eq!(net.num_pos(), n + 1);
        net.check().unwrap();
        // Exhaustive for small widths, corner + pseudo-random for wide ones.
        if n <= 4 {
            for a in 0..(1u64 << n) {
                for b in 0..(1u64 << n) {
                    let got = eval_binary(net, a, n, b, n);
                    assert_eq!(got, a + b, "{a} + {b} (n={n})");
                }
            }
        } else {
            let mask = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
            let mut cases = vec![(0, 0), (mask, 1), (mask, mask), (1, mask)];
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            for _ in 0..50 {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                cases.push((state & mask, state.rotate_left(17) & mask));
            }
            for (a, b) in cases {
                let got = eval_binary(net, a, n, b, n);
                let expect =
                    (u128::from(a) + u128::from(b)) as u64 & (u128::from(mask) << 1 | 1) as u64;
                assert_eq!(got, expect, "{a} + {b} (n={n})");
            }
        }
    }

    #[test]
    fn rca_small_widths_exhaustive() {
        for n in [1, 2, 3, 4] {
            check_adder(&ripple_carry_adder(n), n);
        }
    }

    #[test]
    fn rca32_corner_cases() {
        check_adder(&ripple_carry_adder(32), 32);
    }

    #[test]
    fn cla_small_widths_exhaustive() {
        for n in [1, 2, 3, 4] {
            check_adder(&carry_lookahead_adder(n), n);
        }
    }

    #[test]
    fn cla_group_boundaries() {
        // Widths straddling the 4-bit groups.
        for n in [5, 7, 8, 9] {
            let net = carry_lookahead_adder(n);
            let mask = (1u64 << n) - 1;
            for (a, b) in [(mask, 1), (0b10101 & mask, 0b01011 & mask), (mask, mask)] {
                assert_eq!(eval_binary(&net, a, n, b, n), a + b, "n={n} {a}+{b}");
            }
        }
    }

    #[test]
    fn cla32_corner_cases() {
        check_adder(&carry_lookahead_adder(32), 32);
    }

    #[test]
    fn ksa_small_widths_exhaustive() {
        for n in [1, 2, 3, 4] {
            check_adder(&kogge_stone_adder(n), n);
        }
    }

    #[test]
    fn ksa32_corner_cases() {
        check_adder(&kogge_stone_adder(32), 32);
    }

    #[test]
    fn ksa_is_shallower_than_rca() {
        let rca = ripple_carry_adder(32);
        let ksa = kogge_stone_adder(32);
        assert!(
            ksa.depth() < rca.depth(),
            "prefix adder must be shallower: {} vs {}",
            ksa.depth(),
            rca.depth()
        );
    }

    #[test]
    fn all_three_agree() {
        let nets = [
            ripple_carry_adder(8),
            carry_lookahead_adder(8),
            kogge_stone_adder(8),
        ];
        let mut state = 123u64;
        for _ in 0..100 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let a = state & 0xFF;
            let b = (state >> 8) & 0xFF;
            let results: Vec<u64> = nets.iter().map(|n| eval_binary(n, a, 8, b, 8)).collect();
            assert!(
                results.windows(2).all(|w| w[0] == w[1]),
                "{a}+{b}: {results:?}"
            );
        }
    }
}
