//! The benchmark registry: the twelve circuits of the paper's Table 3, with
//! generator functions and the paper's reported reference numbers.

use crate::adders::{carry_lookahead_adder, kogge_stone_adder, ripple_carry_adder};
use crate::alu::{adder_comparator, alu, alu_74181, alu_with_controller};
use crate::multipliers::{array_multiplier, wallace_tree_multiplier};
use crate::secded::sec_ded_16;
use als_network::Network;

/// The paper's Table 3 reference data for one benchmark (reported for the
/// original MCNC/ISCAS netlists; our generated stand-ins differ in absolute
/// size — the comparison target is the *relative* behaviour).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperInfo {
    /// Inputs/outputs as listed in Table 3.
    pub io: (usize, usize),
    /// Node count in Table 3.
    pub nodes: usize,
    /// Mapped area in Table 3.
    pub area: f64,
    /// Mapped delay in Table 3.
    pub delay: f64,
}

/// One benchmark circuit: its name, function description, generator and the
/// paper's reference numbers.
#[derive(Clone)]
pub struct Benchmark {
    /// The paper's circuit name (e.g. `c880`, `RCA32`).
    pub name: &'static str,
    /// The function description from Table 3.
    pub function: &'static str,
    /// Whether our circuit is a generated *stand-in* for an unavailable
    /// netlist (true for the MCNC/ISCAS rows) or the named circuit itself
    /// (false for the arithmetic rows).
    pub stand_in: bool,
    /// Builds the circuit.
    pub build: fn() -> Network,
    /// The paper's Table 3 row.
    pub paper: PaperInfo,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("function", &self.function)
            .field("stand_in", &self.stand_in)
            .field("paper", &self.paper)
            .finish_non_exhaustive()
    }
}

/// All twelve benchmarks of Table 3, in the paper's order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "c880",
            function: "8-bit ALU",
            stand_in: true,
            build: || alu(8),
            paper: PaperInfo {
                io: (60, 26),
                nodes: 357,
                area: 599.0,
                delay: 40.4,
            },
        },
        Benchmark {
            name: "c1908",
            function: "16-bit SEC/DED circuit",
            stand_in: true,
            build: sec_ded_16,
            paper: PaperInfo {
                io: (33, 25),
                nodes: 880,
                area: 1013.0,
                delay: 60.6,
            },
        },
        Benchmark {
            name: "c2670",
            function: "12-bit ALU and controller",
            stand_in: true,
            build: || alu_with_controller(12),
            paper: PaperInfo {
                io: (233, 140),
                nodes: 1153,
                area: 1434.0,
                delay: 67.3,
            },
        },
        Benchmark {
            name: "c3540",
            function: "8-bit ALU",
            stand_in: true,
            build: || alu_with_controller(8),
            paper: PaperInfo {
                io: (50, 22),
                nodes: 629,
                area: 1615.0,
                delay: 84.5,
            },
        },
        Benchmark {
            name: "c5315",
            function: "9-bit ALU",
            stand_in: true,
            build: || alu(9),
            paper: PaperInfo {
                io: (178, 123),
                nodes: 893,
                area: 2432.0,
                delay: 75.3,
            },
        },
        Benchmark {
            name: "c7552",
            function: "32-bit adder/comparator",
            stand_in: true,
            build: || adder_comparator(32),
            paper: PaperInfo {
                io: (207, 108),
                nodes: 1087,
                area: 2759.0,
                delay: 159.8,
            },
        },
        Benchmark {
            name: "alu4",
            function: "ALU",
            stand_in: true,
            build: alu_74181,
            paper: PaperInfo {
                io: (14, 8),
                nodes: 730,
                area: 2740.0,
                delay: 51.5,
            },
        },
        Benchmark {
            name: "RCA32",
            function: "32-bit ripple-carry adder",
            stand_in: false,
            build: || ripple_carry_adder(32),
            paper: PaperInfo {
                io: (64, 33),
                nodes: 202,
                area: 691.0,
                delay: 42.8,
            },
        },
        Benchmark {
            name: "CLA32",
            function: "32-bit carry-lookahead adder",
            stand_in: false,
            build: || carry_lookahead_adder(32),
            paper: PaperInfo {
                io: (64, 33),
                nodes: 303,
                area: 1063.0,
                delay: 45.8,
            },
        },
        Benchmark {
            name: "KSA32",
            function: "32-bit kogge-stone adder",
            stand_in: false,
            build: || kogge_stone_adder(32),
            paper: PaperInfo {
                io: (64, 33),
                nodes: 345,
                area: 1128.0,
                delay: 27.0,
            },
        },
        Benchmark {
            name: "MUL8",
            function: "8-bit array multiplier",
            stand_in: false,
            build: || array_multiplier(8),
            paper: PaperInfo {
                io: (16, 16),
                nodes: 436,
                area: 1276.0,
                delay: 67.9,
            },
        },
        Benchmark {
            name: "WTM8",
            function: "8-bit wallace tree multiplier",
            stand_in: false,
            build: || wallace_tree_multiplier(8),
            paper: PaperInfo {
                io: (16, 16),
                nodes: 382,
                area: 1104.0,
                delay: 69.6,
            },
        },
    ]
}

/// Looks up a benchmark by its Table 3 name (case-insensitive).
pub fn find_benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_benchmarks_in_paper_order() {
        let b = all_benchmarks();
        assert_eq!(b.len(), 12);
        assert_eq!(b[0].name, "c880");
        assert_eq!(b[11].name, "WTM8");
    }

    #[test]
    fn every_benchmark_builds_and_checks() {
        for bench in all_benchmarks() {
            let net = (bench.build)();
            net.check()
                .unwrap_or_else(|e| panic!("{} failed check: {e}", bench.name));
            assert!(net.num_internal() > 0, "{} is empty", bench.name);
            assert!(net.literal_count() > 0, "{} has no literals", bench.name);
        }
    }

    #[test]
    fn arithmetic_benchmarks_match_paper_io() {
        for bench in all_benchmarks().iter().filter(|b| !b.stand_in) {
            let net = (bench.build)();
            assert_eq!(
                (net.num_pis(), net.num_pos()),
                bench.paper.io,
                "{} I/O mismatch",
                bench.name
            );
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(find_benchmark("rca32").is_some());
        assert!(find_benchmark("C880").is_some());
        assert!(find_benchmark("nope").is_none());
    }
}
