//! Multiplier generators: array and Wallace-tree.
//!
//! Both take two `n`-bit little-endian operands on PIs
//! `a0..a(n-1), b0..b(n-1)` and produce the `2n`-bit product — the paper's
//! MUL8 (array) and WTM8 (Wallace tree) at `n = 8`.

use crate::Builder;
use als_network::{Network, NodeId};

fn partial_products(b: &mut Builder, n: usize) -> Vec<Vec<NodeId>> {
    let a: Vec<NodeId> = (0..n).map(|i| b.pi(format!("a{i}"))).collect();
    let bb: Vec<NodeId> = (0..n).map(|i| b.pi(format!("b{i}"))).collect();
    // columns[w] = all partial-product bits of weight w.
    let mut columns: Vec<Vec<NodeId>> = vec![Vec::new(); 2 * n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in bb.iter().enumerate() {
            let pp = b.and(&[ai, bj]);
            columns[i + j].push(pp);
        }
    }
    columns
}

fn product_pos(b: &mut Builder, bits: &[NodeId]) {
    for (i, &p) in bits.iter().enumerate() {
        b.po(format!("p{i}"), p);
    }
}

/// An `n × n` array multiplier (the paper's MUL8 at `n = 8`): partial
/// products reduced row by row with ripple-carry adder rows.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn array_multiplier(n: usize) -> Network {
    assert!(n > 0, "multiplier width must be positive");
    let mut b = Builder::new(format!("MUL{n}"));
    let columns = partial_products(&mut b, n);

    // Row-by-row (carry-save array): keep a running row of sums, add the
    // next diagonal with full adders, rippling within the row.
    let mut bits: Vec<NodeId> = Vec::with_capacity(2 * n);
    let mut carry_row: Vec<NodeId> = Vec::new(); // carries entering next column
    #[allow(clippy::needless_range_loop)] // the index is semantic here
    for w in 0..2 * n {
        let mut operands: Vec<NodeId> = columns[w].clone();
        operands.append(&mut carry_row);
        // Reduce this column down to one sum bit, pushing carries rightward.
        while operands.len() > 1 {
            if operands.len() >= 3 {
                let (x, y, z) = (operands[0], operands[1], operands[2]);
                operands.drain(..3);
                let (s, c) = b.full_adder(x, y, z);
                operands.insert(0, s);
                carry_row.push(c);
            } else {
                let (x, y) = (operands[0], operands[1]);
                operands.drain(..2);
                let (s, c) = b.half_adder(x, y);
                operands.insert(0, s);
                carry_row.push(c);
            }
        }
        bits.push(match operands.first() {
            Some(&s) => s,
            None => b.constant(false),
        });
    }
    product_pos(&mut b, &bits);
    let mut net = b.finish();
    net.propagate_constants();
    net
}

/// An `n × n` Wallace-tree multiplier (the paper's WTM8 at `n = 8`):
/// 3:2 compressors reduce each column in parallel layers until two rows
/// remain, finished by a ripple-carry addition.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn wallace_tree_multiplier(n: usize) -> Network {
    assert!(n > 0, "multiplier width must be positive");
    let mut b = Builder::new(format!("WTM{n}"));
    let mut columns = partial_products(&mut b, n);

    // Wallace reduction: repeatedly compress every column with full/half
    // adders until no column holds more than 2 bits.
    while columns.iter().any(|c| c.len() > 2) {
        let mut next: Vec<Vec<NodeId>> = vec![Vec::new(); columns.len() + 1];
        for (w, col) in columns.iter().enumerate() {
            let mut i = 0;
            while col.len() - i >= 3 {
                let (s, c) = b.full_adder(col[i], col[i + 1], col[i + 2]);
                next[w].push(s);
                next[w + 1].push(c);
                i += 3;
            }
            if col.len() - i == 2 {
                let (s, c) = b.half_adder(col[i], col[i + 1]);
                next[w].push(s);
                next[w + 1].push(c);
            } else if col.len() - i == 1 {
                next[w].push(col[i]);
            }
        }
        next.truncate(2 * n);
        columns = next;
    }

    // Final carry-propagate addition of the two remaining rows.
    let mut bits: Vec<NodeId> = Vec::with_capacity(2 * n);
    let mut carry: Option<NodeId> = None;
    for col in &columns {
        let mut ops: Vec<NodeId> = col.clone();
        if let Some(c) = carry.take() {
            ops.push(c);
        }
        match ops.len() {
            0 => bits.push(b.constant(false)),
            1 => bits.push(ops[0]),
            2 => {
                let (s, c) = b.half_adder(ops[0], ops[1]);
                bits.push(s);
                carry = Some(c);
            }
            3 => {
                let (s, c) = b.full_adder(ops[0], ops[1], ops[2]);
                bits.push(s);
                carry = Some(c);
            }
            _ => unreachable!("columns were reduced to ≤ 2 bits plus a carry"), // lint:allow(panic): documented panic contract
        }
    }
    product_pos(&mut b, &bits);
    let mut net = b.finish();
    net.propagate_constants();
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::eval_binary;

    fn check_multiplier(net: &Network, n: usize) {
        assert_eq!(net.num_pis(), 2 * n);
        assert_eq!(net.num_pos(), 2 * n);
        net.check().unwrap();
        if n <= 4 {
            for a in 0..(1u64 << n) {
                for b in 0..(1u64 << n) {
                    assert_eq!(eval_binary(net, a, n, b, n), a * b, "{a}·{b} (n={n})");
                }
            }
        } else {
            let mask = (1u64 << n) - 1;
            let mut cases = vec![(0, 0), (mask, mask), (1, mask), (mask, 1)];
            let mut state = 0xab_cdefu64;
            for _ in 0..60 {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                cases.push((state & mask, (state >> n) & mask));
            }
            for (a, b) in cases {
                assert_eq!(eval_binary(net, a, n, b, n), a * b, "{a}·{b} (n={n})");
            }
        }
    }

    #[test]
    fn array_small_exhaustive() {
        for n in [1, 2, 3, 4] {
            check_multiplier(&array_multiplier(n), n);
        }
    }

    #[test]
    fn array_mul8() {
        // 8×8 exhaustive is 65 536 cases — cheap with direct eval? Too slow
        // here; corner + random coverage instead.
        check_multiplier(&array_multiplier(8), 8);
    }

    #[test]
    fn wallace_small_exhaustive() {
        for n in [1, 2, 3, 4] {
            check_multiplier(&wallace_tree_multiplier(n), n);
        }
    }

    #[test]
    fn wallace_mul8() {
        check_multiplier(&wallace_tree_multiplier(8), 8);
    }

    #[test]
    fn wallace_is_shallower_than_array() {
        let arr = array_multiplier(8);
        let wal = wallace_tree_multiplier(8);
        assert!(
            wal.depth() <= arr.depth(),
            "wallace {} vs array {}",
            wal.depth(),
            arr.depth()
        );
    }

    #[test]
    fn both_agree_on_random_inputs() {
        let a8 = array_multiplier(8);
        let w8 = wallace_tree_multiplier(8);
        let mut state = 7u64;
        for _ in 0..100 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let a = state & 0xFF;
            let b = (state >> 13) & 0xFF;
            assert_eq!(
                eval_binary(&a8, a, 8, b, 8),
                eval_binary(&w8, a, 8, b, 8),
                "{a}·{b}"
            );
        }
    }
}
