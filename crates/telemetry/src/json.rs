//! A minimal JSON value: rendering and parsing of the subset the telemetry
//! layer needs (objects, arrays, strings, numbers, booleans, null).
//!
//! The build environment has no network access, so `serde`/`serde_json`
//! cannot be fetched; the bench records and the JSONL event log are small
//! and fully under our control, which makes a ~200-line implementation the
//! right trade-off. Numbers are carried as `f64` — every quantity we emit
//! (counters, ratios, seconds) fits exactly or is a measurement with far
//! less than 52 bits of meaningful precision.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string (stored unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept sorted (`BTreeMap`) so rendering is
    /// deterministic — diffs of committed `BENCH_*.json` files stay minimal.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts `key` into an object (panics on non-objects: construction
    /// sites are all in-tree and static).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value.into());
            }
            other => panic!("Json::set on non-object {other:?}"), // lint:allow(panic): documented panic contract
        }
        self
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value rounded to u64, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(n.round() as u64), // lint:allow(as-cast): guarded non-negative; round() yields an integral value
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace) — the JSONL event-log format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation — the committed `BENCH_*.json`
    /// format (reviewable diffs).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset and message on malformed
    /// input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }
}

/// Integers render without a fractional part so counters stay readable.
fn render_number(n: f64) -> String {
    // lint:allow(float-cmp): exact integrality test — fract() is computed from n itself
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64) // lint:allow(as-cast): integral f64 with |n| <= 2^53 fits i64
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        format!("{n:?}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                use std::fmt::Write;
                // lint:allow(silent-result): fmt::Write into a String is infallible
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64) // lint:allow(as-cast): documented: integers round-trip exactly up to 2^53
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64) // lint:allow(as-cast): documented: integers round-trip exactly up to 2^53
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates degrade to U+FFFD; the telemetry
                            // layer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        // The scanned span is ASCII by construction, so the slice is valid
        // UTF-8; a malformed span still fails the parse below, not here.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_compact_and_pretty() {
        let mut obj = Json::object();
        obj.set("name", "KSA32")
            .set("count", 42u64)
            .set("ratio", 0.875)
            .set("quick", true)
            .set("note", Json::Null)
            .set("runs", vec![Json::from(1u64), Json::from(2u64)]);
        for text in [obj.render(), obj.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), obj, "{text}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(10_048u64).render(), "10048");
        assert_eq!(Json::from(0.5).render(), "0.5");
        assert_eq!(Json::Num(-3.0).render(), "-3");
    }

    #[test]
    fn escapes_roundtrip() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(Json::parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn parses_standard_escapes_and_unicode() {
        let v = Json::parse(r#""aA\/\b\f""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA/\u{8}\u{c}");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "truthy", "{\"a\" 1}", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": [true, "x"], "c": -1}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("c").and_then(Json::as_u64), None);
        assert_eq!(v.get("c").and_then(Json::as_f64), Some(-1.0));
        let arr = v.get("b").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1].as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn object_keys_render_sorted() {
        let mut obj = Json::object();
        obj.set("zeta", 1u64).set("alpha", 2u64);
        assert_eq!(obj.render(), r#"{"alpha":2,"zeta":1}"#);
    }
}
