//! The in-memory metrics sink: aggregates the event stream into a
//! [`MetricsReport`] that rides on `AlsOutcome`.

use crate::json::Json;
use crate::{Event, PhaseKind, TelemetrySink};
use std::sync::Mutex;
use std::time::Duration;

/// Wall time per instrumented phase, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// §6 redundancy-removal pre-process.
    pub preprocess: u64,
    /// Full-network simulations.
    pub simulate: u64,
    /// Candidate-engine refreshes (their simulations counted under
    /// `simulate` as well — a refresh *contains* a simulation).
    pub refresh: u64,
    /// Error-rate measurements against the golden reference.
    pub measure: u64,
    /// Multi-state knapsack solves.
    pub knapsack: u64,
}

impl PhaseNanos {
    fn slot(&mut self, phase: PhaseKind) -> &mut u64 {
        match phase {
            PhaseKind::Preprocess => &mut self.preprocess,
            PhaseKind::Simulate => &mut self.simulate,
            PhaseKind::Refresh => &mut self.refresh,
            PhaseKind::Measure => &mut self.measure,
            PhaseKind::Knapsack => &mut self.knapsack,
        }
    }

    /// The accumulated wall time of one phase.
    pub fn get(&self, phase: PhaseKind) -> Duration {
        let mut copy = *self;
        Duration::from_nanos(*copy.slot(phase))
    }

    /// `(phase name, seconds)` pairs in reporting order — the shape the
    /// bench JSON records embed.
    pub fn as_seconds(&self) -> [(&'static str, f64); 5] {
        PhaseKind::ALL.map(|p| (p.name(), self.get(p).as_secs_f64()))
    }
}

/// One committed iteration, as observed through the event stream.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IterationMetrics {
    /// 1-based iteration number.
    pub iteration: u64,
    /// Changes applied.
    pub changes: u64,
    /// Literal count after the iteration.
    pub literals: u64,
    /// Measured error rate after the iteration.
    pub error_rate: f64,
    /// Wall time of the iteration, nanoseconds.
    pub nanos: u64,
}

/// Aggregated counters and timers of one synthesis run.
///
/// Attached to every `AlsOutcome` as its `metrics` field; also obtainable
/// from any [`MetricsCollector`] the caller registered through
/// `AlsConfig::builder().telemetry(...)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    /// Algorithm name from the run header (empty if no run was observed).
    pub algorithm: String,
    /// Resolved engine worker count.
    pub threads: u64,
    /// Full-network simulations performed.
    pub simulations: u64,
    /// Total patterns driven across those simulations.
    pub patterns_simulated: u64,
    /// Signature words written across all simulation work — full
    /// simulations contribute `nodes × ⌈patterns/64⌉`, incremental updates
    /// their exact `words` counter. Under adaptive sampling this is the
    /// honest work measure: early-rejected trials write fewer words than
    /// `patterns_simulated` alone suggests.
    pub patterns_simulated_words: u64,
    /// Adaptive-sampling decisions made from a prefix of the pattern
    /// budget: trials rejected by a probe round
    /// (`SamplingEscalated { early_reject: true }`) plus SASIMI candidate
    /// pairs proven infeasible from a prefix scan
    /// (`SimilarityScanned::early_rejects`) — zero under
    /// `PatternPolicy::Fixed`.
    pub adaptive_early_decisions: u64,
    /// Error-rate measurements against the golden reference.
    pub measurements: u64,
    /// Candidate-engine refresh calls.
    pub refreshes: u64,
    /// Node evaluations actually computed (memo-cache misses).
    pub evaluations: u64,
    /// Node evaluations served from the memo cache.
    pub cache_hits: u64,
    /// `invalidate_committed` calls.
    pub invalidations: u64,
    /// Total memo entries dropped by invalidation (sum of cone sizes).
    pub invalidated_entries: u64,
    /// Knapsack instances solved (multi-selection only).
    pub knapsack_solves: u64,
    /// Total DP cells filled across those solves.
    pub knapsack_dp_cells: u64,
    /// Candidate ASEs discarded by static error bounds before their local
    /// pattern distribution was gathered.
    pub candidates_pruned: u64,
    /// Node evaluations whose local-distribution gather was skipped
    /// entirely because every candidate was pruned — the
    /// simulations-avoided measure.
    pub nodes_skipped: u64,
    /// Incremental dirty-set resimulation updates performed.
    pub resim_updates: u64,
    /// Nodes actually re-evaluated across those updates.
    pub resim_nodes: u64,
    /// TFO nodes skipped by the equal-signature early exit.
    pub resim_skipped_early_exit: u64,
    /// Nodes a full resimulation would have evaluated across those updates
    /// — `resim_nodes` strictly below this is the incremental saving.
    pub resim_full_equivalent: u64,
    /// SAT queries issued by don't-care classification
    /// (`solve_with_assumptions` calls).
    pub sat_queries: u64,
    /// SAT solver instances that served at least one query —
    /// `solver_instances ≪ sat_queries` is the incremental-reuse measure.
    pub solver_instances: u64,
    /// Clauses physically reclaimed by clause-group retraction.
    pub clauses_retracted: u64,
    /// Mapped critical-path delay of the final network, in the cell
    /// library's delay units. Telemetry has no mapper dependency, so this is
    /// populated *externally* (by the bench runner and the sweep
    /// orchestrator after technology mapping), not from the event stream;
    /// `0.0` means "not mapped".
    pub mapped_delay: f64,
    /// `als serve` cross-job artifact-cache lookups served from the cache
    /// (one per [`Event::ArtifactCache`] with `hit: true`). Like
    /// `mapped_delay`, the serve daemon may also set this externally when a
    /// job's collector was attached after admission. Zero outside the
    /// daemon.
    pub artifact_cache_hits: u64,
    /// `als serve` cross-job artifact-cache lookups that had to rebuild the
    /// artifact (`hit: false`). Zero outside the daemon.
    pub artifact_cache_misses: u64,
    /// Per-phase wall time.
    pub phase_nanos: PhaseNanos,
    /// Per-iteration records, in commit order.
    pub iterations: Vec<IterationMetrics>,
    /// Wall time of the whole run, nanoseconds (from the `RunEnd` event).
    pub total_nanos: u64,
}

impl MetricsReport {
    /// Memo misses — an alias for [`evaluations`](MetricsReport::evaluations)
    /// (every evaluation *is* a miss), provided so call sites can state
    /// which aspect they mean.
    pub fn cache_misses(&self) -> u64 {
        self.evaluations
    }

    /// Cache hit rate in `[0, 1]` (`0` before any refresh).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.evaluations;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64 // lint:allow(as-cast): counts << 2^52, exact in f64
        }
    }

    /// Total run wall time.
    pub fn total_time(&self) -> Duration {
        Duration::from_nanos(self.total_nanos)
    }

    /// Folds one event into the aggregates. [`MetricsCollector`] calls this
    /// under its lock; it is public so replaying a parsed JSONL log (or a
    /// recorded `Vec<Event>`) can rebuild the same report offline.
    pub fn absorb(&mut self, event: &Event) {
        match *event {
            Event::RunStart {
                algorithm, threads, ..
            } => {
                self.algorithm = algorithm.to_string();
                self.threads = threads as u64; // lint:allow(as-cast): usize fits u64 on all supported targets
            }
            Event::PhaseEnd { phase, nanos } => {
                *self.phase_nanos.slot(phase) += nanos;
            }
            Event::Simulated {
                patterns,
                nodes,
                nanos,
            } => {
                self.simulations += 1;
                self.patterns_simulated += patterns;
                self.patterns_simulated_words += nodes * patterns.div_ceil(64);
                self.phase_nanos.simulate += nanos;
            }
            Event::Resimulated {
                resim_nodes,
                skipped_early_exit,
                full_equivalent,
                words,
                nanos,
                ..
            } => {
                self.resim_updates += 1;
                self.resim_nodes += resim_nodes;
                self.resim_skipped_early_exit += skipped_early_exit;
                self.resim_full_equivalent += full_equivalent;
                self.patterns_simulated_words += words;
                self.phase_nanos.simulate += nanos;
            }
            Event::SamplingEscalated { early_reject, .. } => {
                if early_reject {
                    self.adaptive_early_decisions += 1;
                }
            }
            Event::SimilarityScanned {
                early_rejects,
                words,
                ..
            } => {
                self.patterns_simulated_words += words;
                self.adaptive_early_decisions += early_rejects;
            }
            Event::Measured { nanos, .. } => {
                self.measurements += 1;
                self.phase_nanos.measure += nanos;
            }
            Event::EngineRefresh {
                evaluated,
                cache_hits,
                nodes_skipped,
                nanos,
            } => {
                self.refreshes += 1;
                self.evaluations += evaluated;
                self.cache_hits += cache_hits;
                self.nodes_skipped += nodes_skipped;
                self.phase_nanos.refresh += nanos;
            }
            Event::CandidatePruned { .. } => {
                self.candidates_pruned += 1;
            }
            Event::SatActivity {
                sat_queries,
                solver_instances,
                clauses_retracted,
            } => {
                self.sat_queries += sat_queries;
                self.solver_instances += solver_instances;
                self.clauses_retracted += clauses_retracted;
            }
            Event::ConeInvalidated { dropped, .. } => {
                self.invalidations += 1;
                self.invalidated_entries += dropped;
            }
            Event::KnapsackSolved {
                dp_cells, nanos, ..
            } => {
                self.knapsack_solves += 1;
                self.knapsack_dp_cells += dp_cells;
                self.phase_nanos.knapsack += nanos;
            }
            Event::ArtifactCache { hit, .. } => {
                if hit {
                    self.artifact_cache_hits += 1;
                } else {
                    self.artifact_cache_misses += 1;
                }
            }
            // Per-change certificates are audit data, not aggregates (the
            // per-iteration change count arrives with `IterationEnd`), and
            // sweep orchestration events aggregate nothing here either: a
            // sweep's per-point metrics live in its own SweepRecord, and
            // per-run collectors never see sweep-level events (grid jobs run
            // with telemetry disabled). Job admission is likewise a
            // daemon-level line: queue depth is a service property, not a
            // per-run aggregate.
            Event::ChangeCommitted { .. }
            | Event::SweepStart { .. }
            | Event::SweepPointDone { .. }
            | Event::JobAdmitted { .. } => {}
            Event::IterationEnd {
                iteration,
                changes,
                literals,
                error_rate,
                nanos,
            } => {
                self.iterations.push(IterationMetrics {
                    iteration,
                    changes,
                    literals,
                    error_rate,
                    nanos,
                });
            }
            Event::RunEnd { nanos, .. } => {
                self.total_nanos = nanos;
            }
        }
    }

    /// The report as a JSON object — the `"metrics"` block of a
    /// `BENCH_*.json` run entry.
    pub fn to_json(&self) -> Json {
        let mut phases = Json::object();
        for (name, secs) in self.phase_nanos.as_seconds() {
            phases.set(name, secs);
        }
        let mut obj = Json::object();
        obj.set("algorithm", self.algorithm.as_str())
            .set("threads", self.threads)
            .set("simulations", self.simulations)
            .set("patterns_simulated", self.patterns_simulated)
            .set("patterns_simulated_words", self.patterns_simulated_words)
            .set("adaptive_early_decisions", self.adaptive_early_decisions)
            .set("measurements", self.measurements)
            .set("refreshes", self.refreshes)
            .set("evaluations", self.evaluations)
            .set("cache_hits", self.cache_hits)
            .set("invalidations", self.invalidations)
            .set("invalidated_entries", self.invalidated_entries)
            .set("knapsack_solves", self.knapsack_solves)
            .set("knapsack_dp_cells", self.knapsack_dp_cells)
            .set("candidates_pruned", self.candidates_pruned)
            .set("nodes_skipped", self.nodes_skipped)
            .set("resim_updates", self.resim_updates)
            .set("resim_nodes", self.resim_nodes)
            .set("resim_skipped_early_exit", self.resim_skipped_early_exit)
            .set("resim_full_equivalent", self.resim_full_equivalent)
            .set("sat_queries", self.sat_queries)
            .set("solver_instances", self.solver_instances)
            .set("clauses_retracted", self.clauses_retracted)
            .set("mapped_delay", self.mapped_delay)
            .set("artifact_cache_hits", self.artifact_cache_hits)
            .set("artifact_cache_misses", self.artifact_cache_misses)
            .set("iterations", self.iterations.len())
            .set("total_s", self.total_time().as_secs_f64())
            .set("phase_s", phases);
        obj
    }
}

/// A [`TelemetrySink`] that aggregates events into a [`MetricsReport`].
///
/// Register one through `AlsConfig::builder().telemetry(collector.clone())`
/// and read [`MetricsCollector::report`] after the run — or just use the
/// `metrics` field of the returned outcome, which the algorithms populate
/// from an internal collector.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    report: Mutex<MetricsReport>,
}

impl MetricsCollector {
    /// A fresh, empty collector.
    pub fn new() -> MetricsCollector {
        MetricsCollector::default()
    }

    /// A snapshot of the aggregates so far.
    pub fn report(&self) -> MetricsReport {
        self.report
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl TelemetrySink for MetricsCollector {
    fn record(&self, event: &Event) {
        self.report
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .absorb(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_aggregates_the_stream() {
        let collector = MetricsCollector::new();
        for event in [
            Event::RunStart {
                algorithm: "multi-selection",
                threads: 2,
                num_patterns: 64,
                nodes: 8,
                threshold: 0.05,
                seed: 1,
            },
            Event::Simulated {
                patterns: 64,
                nodes: 8,
                nanos: 100,
            },
            Event::Measured {
                error_rate: 0.0,
                nanos: 40,
            },
            Event::Resimulated {
                dirty: 1,
                resim_nodes: 3,
                skipped_early_exit: 2,
                full_equivalent: 8,
                words: 3,
                nanos: 60,
            },
            Event::SamplingEscalated {
                from_words: 0,
                to_words: 1,
                errors: 9,
                early_reject: true,
            },
            Event::SamplingEscalated {
                from_words: 1,
                to_words: 2,
                errors: 0,
                early_reject: false,
            },
            Event::SimilarityScanned {
                pairs: 40,
                early_rejects: 30,
                words: 70,
                words_full: 160,
            },
            Event::EngineRefresh {
                evaluated: 8,
                cache_hits: 0,
                nodes_skipped: 1,
                nanos: 500,
            },
            Event::CandidatePruned {
                node: "g2".to_string(),
                ase: "0".to_string(),
                static_lo: 0.2,
                static_hi: 0.4,
                budget: 0.05,
            },
            Event::KnapsackSolved {
                items: 3,
                capacity: 50,
                dp_cells: 153,
                nanos: 20,
            },
            Event::ConeInvalidated {
                changed: 2,
                dropped: 5,
            },
            Event::SatActivity {
                sat_queries: 32,
                solver_instances: 2,
                clauses_retracted: 120,
            },
            Event::EngineRefresh {
                evaluated: 5,
                cache_hits: 3,
                nodes_skipped: 0,
                nanos: 300,
            },
            Event::SatActivity {
                sat_queries: 8,
                solver_instances: 1,
                clauses_retracted: 30,
            },
            Event::ArtifactCache {
                artifact: "network",
                hit: true,
            },
            Event::ArtifactCache {
                artifact: "signatures",
                hit: false,
            },
            Event::ArtifactCache {
                artifact: "delay_map",
                hit: true,
            },
            Event::JobAdmitted {
                job: 1,
                queue_depth: 1,
            },
            Event::IterationEnd {
                iteration: 1,
                changes: 2,
                literals: 30,
                error_rate: 0.01,
                nanos: 900,
            },
            Event::RunEnd {
                iterations: 1,
                literals: 30,
                error_rate: 0.01,
                nanos: 1_500,
            },
        ] {
            collector.record(&event);
        }
        let r = collector.report();
        assert_eq!(r.algorithm, "multi-selection");
        assert_eq!(r.threads, 2);
        assert_eq!(r.simulations, 1);
        assert_eq!(r.patterns_simulated, 64);
        assert_eq!(r.patterns_simulated_words, 8 + 3 + 70);
        assert_eq!(r.adaptive_early_decisions, 1 + 30);
        assert_eq!(r.measurements, 1);
        assert_eq!(r.refreshes, 2);
        assert_eq!(r.evaluations, 13);
        assert_eq!(r.cache_misses(), 13);
        assert_eq!(r.cache_hits, 3);
        assert!((r.cache_hit_rate() - 3.0 / 16.0).abs() < 1e-12);
        assert_eq!(r.invalidations, 1);
        assert_eq!(r.invalidated_entries, 5);
        assert_eq!(r.knapsack_solves, 1);
        assert_eq!(r.knapsack_dp_cells, 153);
        assert_eq!(r.candidates_pruned, 1);
        assert_eq!(r.nodes_skipped, 1);
        assert_eq!(r.resim_updates, 1);
        assert_eq!(r.resim_nodes, 3);
        assert_eq!(r.resim_skipped_early_exit, 2);
        assert_eq!(r.resim_full_equivalent, 8);
        assert_eq!(r.sat_queries, 40);
        assert_eq!(r.solver_instances, 3);
        assert_eq!(r.clauses_retracted, 150);
        assert_eq!(r.artifact_cache_hits, 2);
        assert_eq!(r.artifact_cache_misses, 1);
        assert_eq!(r.phase_nanos.refresh, 800);
        assert_eq!(r.phase_nanos.simulate, 160);
        assert_eq!(r.phase_nanos.measure, 40);
        assert_eq!(r.phase_nanos.knapsack, 20);
        assert_eq!(r.iterations.len(), 1);
        assert_eq!(r.iterations[0].changes, 2);
        assert_eq!(r.total_nanos, 1_500);
        assert_eq!(r.total_time(), Duration::from_nanos(1_500));
    }

    #[test]
    fn report_serializes_every_counter() {
        let mut report = MetricsReport::default();
        report.absorb(&Event::EngineRefresh {
            evaluated: 7,
            cache_hits: 2,
            nodes_skipped: 3,
            nanos: 10,
        });
        report.absorb(&Event::Resimulated {
            dirty: 2,
            resim_nodes: 5,
            skipped_early_exit: 4,
            full_equivalent: 9,
            words: 15,
            nanos: 11,
        });
        report.absorb(&Event::SamplingEscalated {
            from_words: 0,
            to_words: 4,
            errors: 6,
            early_reject: true,
        });
        report.absorb(&Event::SatActivity {
            sat_queries: 16,
            solver_instances: 1,
            clauses_retracted: 44,
        });
        report.absorb(&Event::ArtifactCache {
            artifact: "absint",
            hit: false,
        });
        let json = report.to_json();
        assert_eq!(json.get("evaluations").and_then(Json::as_u64), Some(7));
        assert_eq!(json.get("cache_hits").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("nodes_skipped").and_then(Json::as_u64), Some(3));
        assert_eq!(json.get("resim_updates").and_then(Json::as_u64), Some(1));
        assert_eq!(
            json.get("patterns_simulated_words").and_then(Json::as_u64),
            Some(15)
        );
        assert_eq!(
            json.get("adaptive_early_decisions").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(json.get("resim_nodes").and_then(Json::as_u64), Some(5));
        assert_eq!(
            json.get("resim_skipped_early_exit").and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(
            json.get("resim_full_equivalent").and_then(Json::as_u64),
            Some(9)
        );
        assert_eq!(
            json.get("candidates_pruned").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(json.get("sat_queries").and_then(Json::as_u64), Some(16));
        assert_eq!(json.get("solver_instances").and_then(Json::as_u64), Some(1));
        assert_eq!(
            json.get("clauses_retracted").and_then(Json::as_u64),
            Some(44)
        );
        assert_eq!(
            json.get("artifact_cache_hits").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            json.get("artifact_cache_misses").and_then(Json::as_u64),
            Some(1)
        );
        assert!(json.get("phase_s").and_then(|p| p.get("refresh")).is_some());
    }

    #[test]
    fn hit_rate_handles_empty_report() {
        assert_eq!(MetricsReport::default().cache_hit_rate(), 0.0);
    }
}
