//! Observability for the approximate-logic-synthesis engine.
//!
//! The paper's core claim is a *runtime* one — the proposed algorithms
//! finish in seconds where SASIMI takes minutes (Table 4) — so the engine
//! carries a lightweight telemetry layer that makes every run measurable:
//!
//! * [`TelemetrySink`] — the sink trait; implementations receive coarse
//!   [`Event`]s (one per refresh / simulation / iteration, never per node);
//! * [`Telemetry`] — the cheap handle threaded through `AlsConfig` and the
//!   candidate engine. Disabled (no sinks) it costs one branch per
//!   instrumentation point and never constructs an event;
//! * [`MetricsCollector`] / [`MetricsReport`] — the in-memory aggregation
//!   sink; every `AlsOutcome` carries a report in its `metrics` field;
//! * [`JsonlSink`] — a streaming JSONL event log for offline analysis;
//! * [`Json`] — the minimal JSON value type backing the event log and the
//!   `BENCH_*.json` perf records (the build environment is offline, so
//!   `serde` is not available).
//!
//! # Example
//!
//! ```
//! use als_telemetry::{Event, MetricsCollector, Telemetry, TelemetrySink};
//! use std::sync::Arc;
//!
//! let collector = Arc::new(MetricsCollector::new());
//! let telemetry = Telemetry::from(collector.clone());
//! telemetry.emit(|| Event::EngineRefresh {
//!     evaluated: 10,
//!     cache_hits: 3,
//!     nodes_skipped: 2,
//!     nanos: 1_000,
//! });
//! assert_eq!(collector.report().evaluations, 10);
//! assert_eq!(collector.report().cache_hits, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

mod event;
pub mod json;
mod jsonl;
mod metrics;
mod sink;

pub use event::{Event, PhaseKind};
pub use json::{Json, JsonError};
pub use jsonl::{JsonlSink, EVENT_LOG_SCHEMA_VERSION};
pub use metrics::{IterationMetrics, MetricsCollector, MetricsReport, PhaseNanos};
pub use sink::{Telemetry, TelemetrySink};
