//! The telemetry event vocabulary.
//!
//! Events are plain `Copy` data except for the run header — no allocations
//! happen on the hot path, and an event is only *constructed* when at least
//! one sink is attached (see [`Telemetry::emit`](crate::Telemetry::emit)).
//! Granularity is deliberately coarse: one event per engine refresh,
//! simulation, measurement, knapsack solve, committed iteration or
//! statically pruned candidate — never per pattern — so enabling telemetry
//! cannot perturb the synthesis loop it observes. (Pruned-candidate events
//! are the one per-candidate exception: each one records a simulation that
//! did *not* happen, so they are sparse by construction.)

use crate::json::Json;

/// The instrumented phases of a synthesis run, used for per-phase wall-time
/// aggregation (see [`PhaseNanos`](crate::PhaseNanos)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// The §6 redundancy-removal pre-process.
    Preprocess,
    /// Bit-parallel simulation of the full network.
    Simulate,
    /// Candidate-engine refresh (ASE enumeration + pricing; includes the
    /// simulation it triggers).
    Refresh,
    /// Error-rate / magnitude measurement against the golden reference.
    Measure,
    /// The multi-state knapsack DP (multi-selection only).
    Knapsack,
}

impl PhaseKind {
    /// All phases, in reporting order.
    pub const ALL: [PhaseKind; 5] = [
        PhaseKind::Preprocess,
        PhaseKind::Simulate,
        PhaseKind::Refresh,
        PhaseKind::Measure,
        PhaseKind::Knapsack,
    ];

    /// The stable snake_case name used in JSON records.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Preprocess => "preprocess",
            PhaseKind::Simulate => "simulate",
            PhaseKind::Refresh => "refresh",
            PhaseKind::Measure => "measure",
            PhaseKind::Knapsack => "knapsack",
        }
    }
}

/// One telemetry event. The variants mirror the engine's phases; every
/// quantity a sink could want is carried in the event itself, so sinks never
/// reach back into the engine.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Event {
    /// A synthesis run started.
    RunStart {
        /// `"single-selection"`, `"multi-selection"` or `"sasimi"`.
        algorithm: &'static str,
        /// Resolved engine worker count.
        threads: usize,
        /// Simulation vectors per measurement.
        num_patterns: usize,
        /// Internal nodes of the input network.
        nodes: usize,
        /// The error-rate threshold.
        threshold: f64,
        /// Stimulus seed: together with `num_patterns` and the golden
        /// network's PI count this reconstructs the exact pattern set, so an
        /// offline auditor can re-derive every claimed error rate.
        seed: u64,
    },
    /// A timed phase completed (emitted for phases without a dedicated
    /// event, currently the pre-process).
    PhaseEnd {
        /// Which phase.
        phase: PhaseKind,
        /// Its wall time.
        nanos: u64,
    },
    /// One full-network simulation completed.
    Simulated {
        /// Patterns driven.
        patterns: u64,
        /// Network nodes evaluated per pattern block.
        nodes: u64,
        /// Wall time of the simulation.
        nanos: u64,
    },
    /// One incremental dirty-set resimulation completed (see
    /// `als_sim::IncrementalSim`): only the transitive fanout of the dirty
    /// nodes was re-evaluated, with equal-signature branches early-exited.
    Resimulated {
        /// Distinct live internal nodes the caller marked dirty.
        dirty: u64,
        /// Nodes actually re-evaluated.
        resim_nodes: u64,
        /// TFO nodes skipped because every fanin signature was unchanged.
        skipped_early_exit: u64,
        /// Nodes a full resimulation would have evaluated (every live
        /// non-PI node) — `resim_nodes < full_equivalent` is the saving.
        full_equivalent: u64,
        /// Signature words actually written (`resim_nodes × word-range
        /// length`): under adaptive sampling a probe round covers only a
        /// prefix of each signature, so this is the honest work measure.
        words: u64,
        /// Wall time of the update.
        nanos: u64,
    },
    /// Adaptive pattern sampling finished one probe round: the sample-sound
    /// interval around the measured rate still straddled (or cleared) the
    /// accept/reject boundary, so the trial either escalated to a wider
    /// prefix or stopped early.
    SamplingEscalated {
        /// Pattern words already covered before this round.
        from_words: u64,
        /// Pattern words covered after this round.
        to_words: u64,
        /// Erroneous patterns counted over the covered prefix.
        errors: u64,
        /// `true` when the prefix alone already proves rejection (the
        /// interval's lower bound exceeds the threshold) — the trial stops
        /// here without simulating the remaining words.
        early_reject: bool,
    },
    /// One pairwise similarity sweep of SASIMI candidate generation
    /// completed, aggregated over all ordered signal pairs (per-pair events
    /// would flood the log). Under adaptive sampling each pair's signature
    /// scan starts at a word prefix and doubles only while the pair could
    /// still substitute in some phase; `early_rejects` counts pairs proven
    /// infeasible from a prefix.
    SimilarityScanned {
        /// Ordered signal pairs scanned.
        pairs: u64,
        /// Pairs rejected from a word prefix (both phases infeasible).
        early_rejects: u64,
        /// Signature words actually read.
        words: u64,
        /// Words a full-width scan of every pair would have read.
        words_full: u64,
    },
    /// One error-rate measurement against the golden reference completed.
    Measured {
        /// The measured error rate.
        error_rate: f64,
        /// Wall time of the measurement.
        nanos: u64,
    },
    /// The candidate engine brought its memo up to date.
    EngineRefresh {
        /// Nodes whose cached pricing was stale (evaluated this refresh).
        evaluated: u64,
        /// Nodes served from the memo.
        cache_hits: u64,
        /// Nodes whose local-distribution gather was skipped entirely
        /// because static bounds pruned every candidate — the
        /// simulations-avoided measure.
        nodes_skipped: u64,
        /// Wall time of the refresh (simulation included).
        nanos: u64,
    },
    /// A candidate ASE was discarded *without* gathering its local pattern
    /// distribution: its static lower error bound already exceeds the
    /// remaining error budget, so the dynamic path could never accept it.
    CandidatePruned {
        /// Name of the node the candidate would have rewritten.
        node: String,
        /// Display form of the rejected local function.
        ase: String,
        /// Static lower bound on the candidate's apparent error rate.
        static_lo: f64,
        /// Static upper bound on the candidate's apparent error rate.
        static_hi: f64,
        /// The remaining error budget the bound was compared against.
        budget: f64,
    },
    /// Aggregated SAT activity from don't-care classification over one
    /// engine refresh (or one classical simplification pass): how many
    /// solver queries ran, how many solver instances served them, and how
    /// many clauses group retraction physically reclaimed. With incremental
    /// solver reuse `solver_instances` stays far below `sat_queries`.
    SatActivity {
        /// Individual `solve_with_assumptions` calls issued.
        sat_queries: u64,
        /// Solver instances that served at least one query.
        solver_instances: u64,
        /// Clauses physically swept by clause-group retraction.
        clauses_retracted: u64,
    },
    /// A committed change set invalidated part of the engine memo.
    ConeInvalidated {
        /// Nodes in the committed change set.
        changed: u64,
        /// Memo entries dropped (the invalidation-cone size).
        dropped: u64,
    },
    /// A multi-state knapsack instance was solved.
    KnapsackSolved {
        /// Candidate items (eligible nodes).
        items: u64,
        /// Scaled error-rate capacity.
        capacity: u64,
        /// DP cells filled — the `O(states × capacity)` work measure.
        dp_cells: u64,
        /// Wall time of the solve.
        nanos: u64,
    },
    /// One accepted change — the approximation certificate for a single
    /// node rewrite. The claimed apparent error rate is what Theorem 1 sums:
    /// an auditor can replay the log and check the whole inequality chain.
    ChangeCommitted {
        /// 1-based iteration the change was committed in.
        iteration: u64,
        /// Name of the rewritten node.
        node: String,
        /// Display form of the new local function (or substitution).
        ase: String,
        /// Literals the change saved at commit time.
        literals_saved: u64,
        /// Claimed apparent error rate of the change (§3.2) — the
        /// Theorem-1 summand.
        apparent: f64,
        /// Static lower bound on the apparent rate, when the engine
        /// computed one (`None` for flows without static analysis, e.g.
        /// SASIMI).
        static_lo: Option<f64>,
        /// Static upper bound on the apparent rate, when available.
        static_hi: Option<f64>,
    },
    /// One iteration of the selection loop committed.
    IterationEnd {
        /// 1-based iteration number.
        iteration: u64,
        /// Changes applied this iteration.
        changes: u64,
        /// Literal count after the iteration.
        literals: u64,
        /// Measured error rate after the iteration.
        error_rate: f64,
        /// Wall time of the iteration.
        nanos: u64,
    },
    /// A design-space sweep started: the grid is about to dispatch.
    SweepStart {
        /// Grid points (threshold × algorithm × pattern-policy products).
        grid_points: u64,
        /// Resolved sweep worker count (grid-point parallelism, distinct
        /// from the per-run engine threads).
        workers: u64,
    },
    /// One sweep grid point finished: its synthesis ran to completion and
    /// the result was technology-mapped. Emitted in deterministic grid
    /// order after all points join, so sweep logs are byte-stable across
    /// worker counts.
    SweepPointDone {
        /// `"single-selection"`, `"multi-selection"` or `"sasimi"`.
        algorithm: &'static str,
        /// The error-rate threshold the point ran under.
        threshold: f64,
        /// Final literal count of the approximated network.
        literals: u64,
        /// Mapped critical-path delay of the approximated network.
        mapped_delay: f64,
        /// Measured error rate against the golden network.
        error_rate: f64,
        /// Wall time of the point (synthesis + mapping).
        nanos: u64,
    },
    /// The `als serve` daemon admitted a job into its bounded queue.
    JobAdmitted {
        /// Daemon-assigned job sequence number.
        job: u64,
        /// Queue depth (admitted, not yet claimed) right after admission.
        queue_depth: u64,
    },
    /// The `als serve` cross-job artifact cache was consulted for one
    /// artifact kind (`"network"`, `"signatures"`, `"absint"`,
    /// `"delay_map"`). A hit means the job skipped rebuilding that artifact.
    ArtifactCache {
        /// Which artifact was looked up.
        artifact: &'static str,
        /// Whether the lookup was served from the cache.
        hit: bool,
    },
    /// The run finished.
    RunEnd {
        /// Committed iterations.
        iterations: u64,
        /// Final literal count.
        literals: u64,
        /// Final measured error rate.
        error_rate: f64,
        /// Wall time of the whole run.
        nanos: u64,
    },
}

impl Event {
    /// The stable snake_case tag used as `"event"` in the JSONL log.
    pub fn name(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::PhaseEnd { .. } => "phase_end",
            Event::Simulated { .. } => "simulated",
            Event::Resimulated { .. } => "resimulated",
            Event::SamplingEscalated { .. } => "sampling_escalated",
            Event::SimilarityScanned { .. } => "similarity_scanned",
            Event::Measured { .. } => "measured",
            Event::EngineRefresh { .. } => "engine_refresh",
            Event::CandidatePruned { .. } => "candidate_pruned",
            Event::SatActivity { .. } => "sat_activity",
            Event::ConeInvalidated { .. } => "cone_invalidated",
            Event::KnapsackSolved { .. } => "knapsack_solved",
            Event::ChangeCommitted { .. } => "change_committed",
            Event::IterationEnd { .. } => "iteration_end",
            Event::SweepStart { .. } => "sweep_start",
            Event::SweepPointDone { .. } => "sweep_point_done",
            Event::JobAdmitted { .. } => "job_admitted",
            Event::ArtifactCache { .. } => "artifact_cache",
            Event::RunEnd { .. } => "run_end",
        }
    }

    /// The event as a JSON object (without the log envelope; see
    /// [`JsonlSink`](crate::JsonlSink) for the line format).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("event", self.name());
        match *self {
            Event::RunStart {
                algorithm,
                threads,
                num_patterns,
                nodes,
                threshold,
                seed,
            } => {
                obj.set("algorithm", algorithm)
                    .set("threads", threads)
                    .set("num_patterns", num_patterns)
                    .set("nodes", nodes)
                    .set("threshold", threshold)
                    .set("seed", seed);
            }
            Event::PhaseEnd { phase, nanos } => {
                obj.set("phase", phase.name()).set("nanos", nanos);
            }
            Event::Simulated {
                patterns,
                nodes,
                nanos,
            } => {
                obj.set("patterns", patterns)
                    .set("nodes", nodes)
                    .set("nanos", nanos);
            }
            Event::Resimulated {
                dirty,
                resim_nodes,
                skipped_early_exit,
                full_equivalent,
                words,
                nanos,
            } => {
                obj.set("dirty", dirty)
                    .set("resim_nodes", resim_nodes)
                    .set("skipped_early_exit", skipped_early_exit)
                    .set("full_equivalent", full_equivalent)
                    .set("words", words)
                    .set("nanos", nanos);
            }
            Event::SamplingEscalated {
                from_words,
                to_words,
                errors,
                early_reject,
            } => {
                obj.set("from_words", from_words)
                    .set("to_words", to_words)
                    .set("errors", errors)
                    .set("early_reject", early_reject);
            }
            Event::SimilarityScanned {
                pairs,
                early_rejects,
                words,
                words_full,
            } => {
                obj.set("pairs", pairs)
                    .set("early_rejects", early_rejects)
                    .set("words", words)
                    .set("words_full", words_full);
            }
            Event::Measured { error_rate, nanos } => {
                obj.set("error_rate", error_rate).set("nanos", nanos);
            }
            Event::EngineRefresh {
                evaluated,
                cache_hits,
                nodes_skipped,
                nanos,
            } => {
                obj.set("evaluated", evaluated)
                    .set("cache_hits", cache_hits)
                    .set("nodes_skipped", nodes_skipped)
                    .set("nanos", nanos);
            }
            Event::CandidatePruned {
                ref node,
                ref ase,
                static_lo,
                static_hi,
                budget,
            } => {
                obj.set("node", node.as_str())
                    .set("ase", ase.as_str())
                    .set("static_lo", static_lo)
                    .set("static_hi", static_hi)
                    .set("budget", budget);
            }
            Event::SatActivity {
                sat_queries,
                solver_instances,
                clauses_retracted,
            } => {
                obj.set("sat_queries", sat_queries)
                    .set("solver_instances", solver_instances)
                    .set("clauses_retracted", clauses_retracted);
            }
            Event::ConeInvalidated { changed, dropped } => {
                obj.set("changed", changed).set("dropped", dropped);
            }
            Event::KnapsackSolved {
                items,
                capacity,
                dp_cells,
                nanos,
            } => {
                obj.set("items", items)
                    .set("capacity", capacity)
                    .set("dp_cells", dp_cells)
                    .set("nanos", nanos);
            }
            Event::ChangeCommitted {
                iteration,
                ref node,
                ref ase,
                literals_saved,
                apparent,
                static_lo,
                static_hi,
            } => {
                obj.set("iteration", iteration)
                    .set("node", node.as_str())
                    .set("ase", ase.as_str())
                    .set("literals_saved", literals_saved)
                    .set("apparent", apparent);
                if let Some(lo) = static_lo {
                    obj.set("static_lo", lo);
                }
                if let Some(hi) = static_hi {
                    obj.set("static_hi", hi);
                }
            }
            Event::IterationEnd {
                iteration,
                changes,
                literals,
                error_rate,
                nanos,
            } => {
                obj.set("iteration", iteration)
                    .set("changes", changes)
                    .set("literals", literals)
                    .set("error_rate", error_rate)
                    .set("nanos", nanos);
            }
            Event::SweepStart {
                grid_points,
                workers,
            } => {
                obj.set("grid_points", grid_points).set("workers", workers);
            }
            Event::SweepPointDone {
                algorithm,
                threshold,
                literals,
                mapped_delay,
                error_rate,
                nanos,
            } => {
                obj.set("algorithm", algorithm)
                    .set("threshold", threshold)
                    .set("literals", literals)
                    .set("mapped_delay", mapped_delay)
                    .set("error_rate", error_rate)
                    .set("nanos", nanos);
            }
            Event::JobAdmitted { job, queue_depth } => {
                obj.set("job", job).set("queue_depth", queue_depth);
            }
            Event::ArtifactCache { artifact, hit } => {
                obj.set("artifact", artifact).set("hit", hit);
            }
            Event::RunEnd {
                iterations,
                literals,
                error_rate,
                nanos,
            } => {
                obj.set("iterations", iterations)
                    .set("literals", literals)
                    .set("error_rate", error_rate)
                    .set("nanos", nanos);
            }
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_serializes_with_its_tag() {
        let events = [
            Event::RunStart {
                algorithm: "single-selection",
                threads: 1,
                num_patterns: 64,
                nodes: 10,
                threshold: 0.05,
                seed: 7,
            },
            Event::PhaseEnd {
                phase: PhaseKind::Preprocess,
                nanos: 5,
            },
            Event::Simulated {
                patterns: 64,
                nodes: 10,
                nanos: 7,
            },
            Event::Resimulated {
                dirty: 1,
                resim_nodes: 3,
                skipped_early_exit: 2,
                full_equivalent: 10,
                words: 12,
                nanos: 4,
            },
            Event::SamplingEscalated {
                from_words: 4,
                to_words: 8,
                errors: 2,
                early_reject: false,
            },
            Event::SimilarityScanned {
                pairs: 90,
                early_rejects: 71,
                words: 310,
                words_full: 2880,
            },
            Event::Measured {
                error_rate: 0.01,
                nanos: 3,
            },
            Event::EngineRefresh {
                evaluated: 4,
                cache_hits: 6,
                nodes_skipped: 2,
                nanos: 9,
            },
            Event::CandidatePruned {
                node: "g7".to_string(),
                ase: "0".to_string(),
                static_lo: 0.04,
                static_hi: 0.25,
                budget: 0.01,
            },
            Event::SatActivity {
                sat_queries: 512,
                solver_instances: 4,
                clauses_retracted: 2048,
            },
            Event::ConeInvalidated {
                changed: 1,
                dropped: 3,
            },
            Event::KnapsackSolved {
                items: 5,
                capacity: 50,
                dp_cells: 300,
                nanos: 2,
            },
            Event::ChangeCommitted {
                iteration: 1,
                node: "g3".to_string(),
                ase: "a + b".to_string(),
                literals_saved: 2,
                apparent: 0.015,
                static_lo: Some(0.01),
                static_hi: Some(0.02),
            },
            Event::IterationEnd {
                iteration: 1,
                changes: 2,
                literals: 30,
                error_rate: 0.02,
                nanos: 11,
            },
            Event::SweepStart {
                grid_points: 12,
                workers: 4,
            },
            Event::SweepPointDone {
                algorithm: "multi-selection",
                threshold: 0.01,
                literals: 28,
                mapped_delay: 9.5,
                error_rate: 0.008,
                nanos: 31,
            },
            Event::JobAdmitted {
                job: 3,
                queue_depth: 2,
            },
            Event::ArtifactCache {
                artifact: "network",
                hit: true,
            },
            Event::RunEnd {
                iterations: 1,
                literals: 30,
                error_rate: 0.02,
                nanos: 20,
            },
        ];
        for e in &events {
            let json = e.to_json();
            assert_eq!(json.get("event").and_then(Json::as_str), Some(e.name()));
            // Every rendered event parses back.
            assert_eq!(Json::parse(&json.render()).unwrap(), json);
        }
    }

    #[test]
    fn phase_names_are_unique() {
        let mut names: Vec<_> = PhaseKind::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PhaseKind::ALL.len());
    }
}
