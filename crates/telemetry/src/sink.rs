//! The sink trait and the cheap `Telemetry` handle the engine carries.

use crate::Event;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Receives telemetry events. Implementations must be thread-safe: the
/// candidate engine may emit from scoped worker threads' parent while
/// measurements run elsewhere, and one sink is commonly shared between a
/// config and the caller that later reads it back.
///
/// Sinks **observe only** — the engine never reads anything back through
/// this trait, which is what makes the "telemetry never changes results"
/// property (see `tests/telemetry_determinism.rs`) hold by construction.
pub trait TelemetrySink: Send + Sync {
    /// Handles one event. Called synchronously on the emitting thread;
    /// implementations should return quickly (buffer, don't block).
    fn record(&self, event: &Event);
}

/// A shareable bundle of sinks — the handle threaded through
/// [`AlsConfig`](../als_core/struct.AlsConfig.html) and every engine layer.
///
/// The default handle is *disabled* (no sinks): [`Telemetry::emit`] then
/// returns after one branch without constructing the event, so the
/// instrumented hot paths cost nothing when nobody listens.
#[derive(Clone, Default)]
pub struct Telemetry {
    sinks: Vec<Arc<dyn TelemetrySink>>,
}

impl Telemetry {
    /// The no-op handle (no sinks attached).
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// A handle with `sink` attached.
    pub fn new(sink: Arc<dyn TelemetrySink>) -> Telemetry {
        Telemetry { sinks: vec![sink] }
    }

    /// Returns the handle with one more sink attached.
    pub fn with(mut self, sink: Arc<dyn TelemetrySink>) -> Telemetry {
        self.sinks.push(sink);
        self
    }

    /// Whether any sink is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Emits the event produced by `make` to every sink. `make` runs only
    /// when a sink is attached, so event construction is free when disabled.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if self.sinks.is_empty() {
            return;
        }
        let event = make();
        for sink in &self.sinks {
            sink.record(&event);
        }
    }

    /// Starts a wall-clock measurement — `Some` only when enabled, so
    /// disabled telemetry skips even the `Instant::now()` call. Pair with
    /// [`Telemetry::nanos_since`] inside an [`emit`](Telemetry::emit)
    /// closure.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.is_enabled() {
            // lint:allow(nondeterminism): this IS the telemetry clock every timing reading routes through
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Nanoseconds elapsed since a [`start`](Telemetry::start) mark (`0`
    /// for the disabled `None` mark, which no sink will ever see).
    #[inline]
    pub fn nanos_since(mark: Option<Instant>) -> u64 {
        mark.map_or(0, |t| {
            u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl<S: TelemetrySink + 'static> From<Arc<S>> for Telemetry {
    fn from(sink: Arc<S>) -> Telemetry {
        Telemetry::new(sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Default)]
    struct Counter(AtomicUsize);
    impl TelemetrySink for Counter {
        fn record(&self, _event: &Event) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn disabled_handle_never_builds_events() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        assert!(telemetry.start().is_none());
        let mut built = false;
        telemetry.emit(|| {
            built = true;
            Event::ConeInvalidated {
                changed: 0,
                dropped: 0,
            }
        });
        assert!(!built, "emit must not construct events when disabled");
    }

    #[test]
    fn every_attached_sink_sees_every_event() {
        let a = Arc::new(Counter::default());
        let b = Arc::new(Counter::default());
        let telemetry = Telemetry::from(a.clone()).with(b.clone());
        assert!(telemetry.is_enabled());
        for _ in 0..3 {
            telemetry.emit(|| Event::ConeInvalidated {
                changed: 1,
                dropped: 2,
            });
        }
        assert_eq!(a.0.load(Ordering::Relaxed), 3);
        assert_eq!(b.0.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn nanos_since_is_zero_for_disabled_marks() {
        assert_eq!(Telemetry::nanos_since(None), 0);
        assert!(Telemetry::nanos_since(Some(Instant::now())) < 1_000_000_000);
    }
}
