//! The streaming JSONL event-log sink.
//!
//! One JSON object per line, written as events arrive:
//!
//! ```text
//! {"event":"run_start","algorithm":"single-selection","nodes":345,"num_patterns":10048,"seq":0,"threads":1,"threshold":0.05,"v":1}
//! {"event":"engine_refresh","cache_hits":0,"evaluated":345,"nanos":41873021,"seq":1,"v":1}
//! ...
//! ```
//!
//! Every line carries the schema version (`"v"`) and a per-sink sequence
//! number (`"seq"`), so interleaved logs from concurrent runs into separate
//! files stay individually ordered and versioned for offline analysis.

use crate::{Event, TelemetrySink};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Version of the JSONL line schema; bump on breaking field changes.
/// v2: `run_start` gained `seed`, and every accepted change emits a
/// `change_committed` certificate line (node, ASE, claimed apparent rate).
/// v3: `resimulated` lines carry incremental-resimulation work counts
/// (dirty, resim_nodes, skipped_early_exit, full_equivalent).
/// v4: adaptive pattern sampling — `resimulated` lines gained `words`
/// (signature words actually written), probe rounds emit
/// `sampling_escalated` lines (from_words, to_words, errors, early_reject),
/// and SASIMI candidate generation emits one aggregated
/// `similarity_scanned` line per sweep (pairs, early_rejects, words,
/// words_full).
/// v5: design-space sweeps — a sweep emits one `sweep_start` line
/// (grid_points, workers) and one `sweep_point_done` line per grid point
/// (algorithm, threshold, literals, mapped_delay, error_rate, nanos), in
/// deterministic grid order.
/// v6: incremental SAT — don't-care classification emits aggregated
/// `sat_activity` lines (sat_queries, solver_instances, clauses_retracted)
/// per engine refresh / classical simplification pass.
/// v7: the `als serve` daemon — job admission emits `job_admitted` lines
/// (job, queue_depth) and every cross-job artifact-cache lookup emits an
/// `artifact_cache` line (artifact, hit).
pub const EVENT_LOG_SCHEMA_VERSION: u64 = 7;

/// A [`TelemetrySink`] that streams every event as one JSON line to a
/// writer. Lines are written (and the writer flushed) synchronously per
/// event — the log is for offline analysis of runs that take seconds to
/// minutes, where per-line flush cost is noise and a crash loses nothing.
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
    seq: AtomicU64,
}

impl JsonlSink {
    /// A sink writing to `writer` (e.g. a `Vec<u8>`, a file, a pipe).
    pub fn new(writer: impl Write + Send + 'static) -> JsonlSink {
        JsonlSink {
            writer: Mutex::new(Box::new(writer)),
            seq: AtomicU64::new(0),
        }
    }

    /// A sink writing to a freshly created (truncated) file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }

    /// Events written so far.
    pub fn lines_written(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines_written", &self.lines_written())
            .finish()
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&self, event: &Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut json = event.to_json();
        json.set("v", EVENT_LOG_SCHEMA_VERSION).set("seq", seq);
        let line = json.render();
        // Telemetry must never abort the synthesis run it observes: a
        // poisoned lock keeps writing (the log line is self-contained) and
        // a full disk degrades to a truncated log.
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // lint:allow(silent-result): telemetry writes must not abort the run they observe
        let _ = writeln!(writer, "{line}");
        // lint:allow(silent-result): telemetry writes must not abort the run they observe
        let _ = writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Json;
    use std::sync::Arc;

    /// A `Write` handle into a shared buffer, so the test can read back
    /// what the sink (which owns its writer) wrote.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writes_one_versioned_line_per_event() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(buf.clone());
        sink.record(&Event::ConeInvalidated {
            changed: 1,
            dropped: 4,
        });
        sink.record(&Event::RunEnd {
            iterations: 2,
            literals: 10,
            error_rate: 0.5,
            nanos: 99,
        });
        assert_eq!(sink.lines_written(), 2);

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let parsed = Json::parse(line).unwrap();
            assert_eq!(
                parsed.get("v").and_then(Json::as_u64),
                Some(EVENT_LOG_SCHEMA_VERSION)
            );
            assert_eq!(parsed.get("seq").and_then(Json::as_u64), Some(i as u64));
        }
        let last = Json::parse(lines[1]).unwrap();
        assert_eq!(last.get("event").and_then(Json::as_str), Some("run_end"));
        assert_eq!(last.get("literals").and_then(Json::as_u64), Some(10));
    }
}
