//! Shared daemon/client helpers for the in-process service suites.
//!
//! [`start`] binds a [`Server`] on an ephemeral loopback port and runs it
//! on a background thread; dropping the returned [`Daemon`] requests
//! shutdown and joins that thread. [`Client`] is a minimal line-oriented
//! JSONL client with a generous read timeout, so a protocol bug fails the
//! test instead of hanging the suite.

use als_serve::{ServeConfig, Server, ServerHandle};
use als_telemetry::{Json, Telemetry};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

/// A daemon running on a background thread; shut down and joined on drop.
pub struct Daemon {
    handle: ServerHandle,
    thread: Option<JoinHandle<std::io::Result<()>>>,
}

/// Binds `config` on a loopback ephemeral port and serves it in the
/// background.
pub fn start(mut config: ServeConfig) -> Daemon {
    config.addr = "127.0.0.1:0".to_string();
    let server = Server::bind(&config, Telemetry::disabled()).expect("bind daemon");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    Daemon {
        handle,
        thread: Some(thread),
    }
}

impl Daemon {
    pub fn addr(&self) -> SocketAddr {
        self.handle.local_addr()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread").expect("server run");
        }
    }
}

/// A blocking line-oriented client for one daemon connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        writer
            .set_read_timeout(Some(Duration::from_secs(300)))
            .expect("read timeout");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { reader, writer }
    }

    /// Sends one raw request line.
    pub fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send line");
        self.writer.flush().expect("flush");
    }

    /// Receives the next frame; panics on EOF.
    pub fn recv(&mut self) -> Json {
        self.try_recv().expect("connection closed mid-conversation")
    }

    /// Receives the next frame, or `None` on clean EOF.
    pub fn try_recv(&mut self) -> Option<Json> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read frame");
        if n == 0 {
            return None;
        }
        Some(Json::parse(line.trim()).expect("frame is JSON"))
    }

    /// Reads frames until one of type `kind` arrives, skipping `accepted`
    /// and `progress` frames; any other type fails the test.
    pub fn recv_type(&mut self, kind: &str) -> Json {
        loop {
            let frame = self.recv();
            let ty = frame
                .get("type")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            if ty == kind {
                return frame;
            }
            assert!(
                ty == "accepted" || ty == "progress",
                "unexpected `{ty}` frame while waiting for `{kind}`: {}",
                frame.render()
            );
        }
    }
}

/// Renders a `"synthesize"` request line.
#[allow(clippy::too_many_arguments)]
pub fn synth_request(
    id: &str,
    circuit_field: &str,
    circuit_value: &str,
    threshold: f64,
    algorithm: &str,
    seed: u64,
    patterns: &str,
    progress: bool,
) -> String {
    let mut circuit = Json::object();
    circuit.set(circuit_field, circuit_value);
    let mut obj = Json::object();
    obj.set("v", 1u64)
        .set("type", "synthesize")
        .set("id", id)
        .set("circuit", circuit)
        .set("threshold", threshold)
        .set("algorithm", algorithm)
        .set("seed", seed)
        .set("patterns", patterns)
        .set("progress", progress);
    obj.render()
}

/// Field accessors for response frames.
pub fn str_field<'a>(frame: &'a Json, key: &str) -> &'a str {
    frame
        .get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("frame lacks string `{key}`: {}", frame.render()))
}

// Not every suite uses every accessor; the module is compiled per test
// binary, so the unused ones vary by suite.
#[allow(dead_code)]
pub fn f64_field(frame: &Json, key: &str) -> f64 {
    frame
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("frame lacks number `{key}`: {}", frame.render()))
}

pub fn u64_field(frame: &Json, key: &str) -> u64 {
    frame
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("frame lacks integer `{key}`: {}", frame.render()))
}

pub fn bool_field(frame: &Json, key: &str) -> bool {
    frame
        .get(key)
        .and_then(Json::as_bool)
        .unwrap_or_else(|| panic!("frame lacks bool `{key}`: {}", frame.render()))
}

#[allow(dead_code)]
pub fn obj_field<'a>(frame: &'a Json, key: &str) -> &'a Json {
    frame
        .get(key)
        .unwrap_or_else(|| panic!("frame lacks object `{key}`: {}", frame.render()))
}
