//! Property suite for the wire-protocol parser.
//!
//! The contract: [`parse_request`] is **total**. Arbitrary lossy bytes —
//! raw garbage, bit-flipped frames, truncated frames — always map to
//! either a parsed request or a typed [`ProtocolError`] whose rendered
//! `"error"` frame is itself valid JSON that round-trips back through
//! [`ProtocolError::parse_frame`]. No input panics the parser, and no
//! malformed request escapes without a structured error frame.

use als_serve::{parse_request, ErrorCode, ProtocolError};
use als_telemetry::Json;
use proptest::collection;
use proptest::prelude::*;

/// A well-formed synthesize line the mutation properties start from.
const VALID_FRAME: &str = r#"{"v":1,"type":"synthesize","id":"j1","circuit":{"bench":"RCA32"},"threshold":0.05,"algorithm":"single","seed":9,"patterns":"fixed:256","max_iterations":12,"progress":true}"#;

/// Exercises the parser on one line and, on failure, checks the error
/// frame round-trips to the same typed error.
fn check_total(line: &str) {
    if let Err(err) = parse_request(line) {
        let rendered = err.frame().render();
        let parsed = Json::parse(&rendered).expect("error frame renders as valid JSON");
        let round = ProtocolError::parse_frame(&parsed).expect("error frame round-trips");
        assert_eq!(round.code, err.code);
        assert_eq!(round.message, err.message);
        assert_eq!(round.id, err.id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Raw arbitrary bytes (lossily decoded, as the daemon's reader does)
    /// never panic the parser.
    #[test]
    fn parser_is_total_on_arbitrary_bytes(bytes in collection::vec(any::<u8>(), 0..256)) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        check_total(&line);
    }

    /// Bit-flipped valid frames — the classic lossy-transport corruption —
    /// never panic and always round-trip their error frames.
    #[test]
    fn parser_survives_bit_flips_of_a_valid_frame(spec in (0usize..VALID_FRAME.len(), 0u8..8)) {
        let (pos, bit) = spec;
        let mut bytes = VALID_FRAME.as_bytes().to_vec();
        bytes[pos] ^= 1 << bit;
        let line = String::from_utf8_lossy(&bytes).into_owned();
        check_total(&line);
    }

    /// Truncated valid frames (a client dying mid-write) never panic and
    /// always produce a typed error.
    #[test]
    fn parser_rejects_truncations_with_typed_errors(cut in 0usize..VALID_FRAME.len()) {
        let line = &VALID_FRAME[..cut];
        check_total(line);
        // A strict prefix of the frame is never a complete JSON object, so
        // truncation must surface as a typed error, not a parsed request.
        let err = parse_request(line).expect_err("truncated frame parsed");
        assert!(
            matches!(err.code, ErrorCode::BadJson | ErrorCode::BadRequest | ErrorCode::UnsupportedVersion),
            "unexpected code {:?} for cut {cut}",
            err.code
        );
    }

    /// Structured-but-wrong frames: arbitrary type strings and version
    /// numbers still land in the typed-error space.
    #[test]
    fn arbitrary_types_and_versions_are_typed_errors(spec in (any::<u64>(), collection::vec(any::<u8>(), 0..24))) {
        let (version, type_bytes) = spec;
        let ty = String::from_utf8_lossy(&type_bytes).into_owned();
        let mut obj = Json::object();
        obj.set("v", version).set("type", ty.as_str()).set("id", "fuzz");
        let line = obj.render();
        check_total(&line);
    }
}
