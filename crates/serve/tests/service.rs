//! In-process client/server integration suite.
//!
//! The headline contracts under test, straight from the daemon's design:
//!
//! * **Byte identity** — a job's result (the emitted BLIF, the measured
//!   error rate, the literal counts) is byte-identical to a cold one-shot
//!   `als_core::approximate` call with the same configuration, whether the
//!   daemon served it cold or from a warm artifact cache.
//! * **Warm cache skips phases** — a repeat request for the same circuit
//!   at a *new threshold* reports every cache flag true, zero parse and
//!   context phase time, and non-vacuous hit counters in its metrics.
//! * **Cancellation frees the slot** — cancelling a long job mid-run
//!   yields a `"cancelled"` result at the next iteration boundary and the
//!   worker immediately serves the next job.

mod common;

use als_core::{approximate, AlsConfig, AlsOutcome, PatternPolicy, Strategy};
use als_network::blif;
use als_serve::ServeConfig;
use als_telemetry::Json;
use common::{
    bool_field, f64_field, obj_field, start, str_field, synth_request, u64_field, Client,
};

/// The shared small circuit: an 8-bit ripple-carry adder as BLIF text.
fn rca8_blif() -> String {
    blif::write(&als_circuits::adders::ripple_carry_adder(8))
}

/// The direct (no daemon) reference run the byte-identity contract names.
fn direct(text: &str, threshold: f64, strategy: Strategy, seed: u64, budget: usize) -> AlsOutcome {
    let net = blif::parse(text).expect("reference BLIF parses");
    direct_net(&net, threshold, strategy, seed, budget)
}

/// Reference run on an already-built network (the daemon resolves
/// registry benchmarks without a BLIF round-trip, so the reference must
/// too).
fn direct_net(
    net: &als_network::Network,
    threshold: f64,
    strategy: Strategy,
    seed: u64,
    budget: usize,
) -> AlsOutcome {
    let config = AlsConfig::builder()
        .threshold(threshold)
        .seed(seed)
        .patterns(PatternPolicy::Fixed(budget))
        .max_iterations(10_000)
        .build()
        .expect("reference config");
    approximate(net, strategy, &config).expect("reference run")
}

/// Asserts a `"result"` frame equals the reference outcome byte for byte.
fn assert_matches_direct(result: &Json, reference: &AlsOutcome) {
    assert_eq!(str_field(result, "status"), "done");
    assert_eq!(str_field(result, "blif"), blif::write(&reference.network));
    assert_eq!(
        f64_field(result, "error_rate").to_bits(),
        reference.measured_error_rate.to_bits(),
        "error rates differ bit-for-bit"
    );
    assert_eq!(
        u64_field(result, "initial_literals"),
        reference.initial_literals as u64
    );
    assert_eq!(
        u64_field(result, "final_literals"),
        reference.final_literals as u64
    );
    assert_eq!(
        u64_field(result, "iterations"),
        reference.iterations.len() as u64
    );
}

#[test]
fn cold_and_warm_results_are_byte_identical_to_direct_runs() {
    let text = rca8_blif();
    let daemon = start(ServeConfig::new(""));
    let mut client = Client::connect(daemon.addr());

    // Cold: every artifact is a miss and every phase runs.
    client.send(&synth_request(
        "cold",
        "blif",
        &text,
        0.05,
        "multi",
        7,
        "fixed:256",
        false,
    ));
    let cold = client.recv_type("result");
    assert_matches_direct(&cold, &direct(&text, 0.05, Strategy::Multi, 7, 256));
    let cache = obj_field(&cold, "cache");
    for artifact in ["network", "signatures", "absint", "delay_map"] {
        assert!(!bool_field(cache, artifact), "cold job hit `{artifact}`");
    }
    let metrics = obj_field(&cold, "metrics");
    assert_eq!(u64_field(metrics, "artifact_cache_hits"), 0);
    assert_eq!(u64_field(metrics, "artifact_cache_misses"), 4);

    // Warm: same circuit, same stimulus, NEW threshold. The parse,
    // absint, mapping and golden-signature phases are all served from the
    // cache — their cache flags flip to true, their phase timings are
    // exactly zero, and the hit counters are non-vacuous — yet the result
    // is still byte-identical to a cold single-shot run at the new
    // threshold.
    client.send(&synth_request(
        "warm",
        "blif",
        &text,
        0.02,
        "multi",
        7,
        "fixed:256",
        false,
    ));
    let warm = client.recv_type("result");
    assert_matches_direct(&warm, &direct(&text, 0.02, Strategy::Multi, 7, 256));
    let cache = obj_field(&warm, "cache");
    for artifact in ["network", "signatures", "absint", "delay_map"] {
        assert!(bool_field(cache, artifact), "warm job missed `{artifact}`");
    }
    let timings = obj_field(&warm, "timings");
    assert_eq!(f64_field(timings, "parse_s"), 0.0, "parse phase ran warm");
    assert_eq!(
        f64_field(timings, "context_s"),
        0.0,
        "signature phase ran warm"
    );
    assert!(
        f64_field(timings, "synth_s") > 0.0,
        "synthesis is never cached"
    );
    let metrics = obj_field(&warm, "metrics");
    assert_eq!(u64_field(metrics, "artifact_cache_hits"), 4);
    assert_eq!(u64_field(metrics, "artifact_cache_misses"), 0);
}

#[test]
fn concurrent_jobs_on_separate_connections_all_match_direct_runs() {
    let text = rca8_blif();
    let mut config = ServeConfig::new("");
    config.workers = 4;
    let daemon = start(config);
    let addr = daemon.addr();

    // Four jobs at different thresholds/seeds race through the daemon;
    // each must match its own reference run exactly.
    let jobs: Vec<(f64, u64)> = vec![(0.05, 1), (0.02, 2), (0.08, 3), (0.05, 4)];
    let handles: Vec<_> = jobs
        .iter()
        .map(|&(threshold, seed)| {
            let text = text.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                client.send(&synth_request(
                    "job",
                    "blif",
                    &text,
                    threshold,
                    "single",
                    seed,
                    "fixed:256",
                    false,
                ));
                client.recv_type("result")
            })
        })
        .collect();
    for (handle, (threshold, seed)) in handles.into_iter().zip(jobs) {
        let result = handle.join().expect("client thread");
        assert_matches_direct(
            &result,
            &direct(&text, threshold, Strategy::Single, seed, 256),
        );
    }
}

#[test]
fn registry_benchmarks_are_accepted_by_name() {
    let daemon = start(ServeConfig::new(""));
    let mut client = Client::connect(daemon.addr());
    client.send(&synth_request(
        "bench",
        "bench",
        "RCA32",
        0.05,
        "multi",
        3,
        "fixed:128",
        false,
    ));
    let result = client.recv_type("result");
    let net = (als_circuits::registry::find_benchmark("RCA32")
        .expect("RCA32 registered")
        .build)();
    assert_matches_direct(&result, &direct_net(&net, 0.05, Strategy::Multi, 3, 128));
}

#[test]
fn cancellation_mid_job_frees_the_worker_slot() {
    let mut config = ServeConfig::new("");
    config.workers = 1;
    let daemon = start(config);
    let mut client = Client::connect(daemon.addr());

    // A long job (c880, single selection: tens of seconds in debug
    // builds) with progress streaming on.
    client.send(&synth_request(
        "slow",
        "bench",
        "c880",
        0.2,
        "single",
        1,
        "fixed:1024",
        true,
    ));
    let accepted = client.recv_type("accepted");
    assert_eq!(str_field(&accepted, "id"), "slow");
    // Wait until the job is demonstrably mid-run, then cancel it.
    let first_progress = client.recv_type("progress");
    assert_eq!(str_field(&first_progress, "id"), "slow");
    client.send(r#"{"v":1,"type":"cancel","id":"slow"}"#);
    // The `cancel_ok` acknowledgement and the job's final `result` frame
    // race on the wire (reader thread vs. worker); accept either order.
    let mut saw_cancel_ok = false;
    let result = loop {
        let frame = client.recv();
        match str_field(&frame, "type").to_string().as_str() {
            "cancel_ok" => {
                assert!(bool_field(&frame, "found"), "token not found");
                saw_cancel_ok = true;
            }
            "result" => break frame,
            "progress" => {}
            other => panic!("unexpected `{other}` frame: {}", frame.render()),
        }
    };
    assert!(saw_cancel_ok, "cancel went unacknowledged");
    assert_eq!(str_field(&result, "status"), "cancelled");

    // The single worker slot is free again: the next job runs to
    // completion on the same connection.
    client.send(&synth_request(
        "next",
        "blif",
        &rca8_blif(),
        0.05,
        "multi",
        7,
        "fixed:64",
        false,
    ));
    let next = client.recv_type("result");
    assert_eq!(str_field(&next, "status"), "done");

    // Cancelling a finished job's id is answered, not an error.
    client.send(r#"{"v":1,"type":"cancel","id":"nope"}"#);
    let missing = client.recv_type("cancel_ok");
    assert!(!bool_field(&missing, "found"));
}

#[test]
fn ping_stats_and_shutdown_round_trip() {
    let mut config = ServeConfig::new("");
    config.workers = 2;
    config.queue_capacity = 5;
    let daemon = start(config);
    let mut client = Client::connect(daemon.addr());

    client.send(r#"{"v":1,"type":"ping"}"#);
    assert_eq!(str_field(&client.recv(), "type"), "pong");

    client.send(&synth_request(
        "s1",
        "blif",
        &rca8_blif(),
        0.05,
        "multi",
        7,
        "fixed:64",
        false,
    ));
    client.recv_type("result");

    client.send(r#"{"v":1,"type":"stats"}"#);
    let stats = client.recv_type("stats");
    assert_eq!(u64_field(&stats, "protocol"), 1);
    assert_eq!(u64_field(&stats, "workers"), 2);
    assert_eq!(u64_field(&stats, "queue_capacity"), 5);
    assert_eq!(u64_field(&stats, "jobs_admitted"), 1);
    assert_eq!(u64_field(&stats, "jobs_done"), 1);
    assert_eq!(u64_field(&stats, "jobs_failed"), 0);
    assert_eq!(u64_field(&stats, "cache_circuits"), 1);
    assert_eq!(u64_field(&stats, "cache_misses"), 4);

    // A client-initiated shutdown is acknowledged before the daemon
    // stops; the Daemon drop below joins the server thread, which only
    // returns if the shutdown actually propagated.
    client.send(r#"{"v":1,"type":"shutdown"}"#);
    assert_eq!(str_field(&client.recv(), "type"), "bye");
}
