//! Fault-injection suite: every failure a client can inflict — vanishing
//! mid-stream, oversized or truncated frames, overflowing the admission
//! queue, plain garbage — must come back as a typed error frame or a
//! clean teardown. Never a panic, and never a wedged worker: after each
//! fault the pool is shown to accept and finish the next job.

mod common;

use als_network::blif;
use als_serve::ServeConfig;
use als_telemetry::Json;
use common::{bool_field, start, str_field, synth_request, u64_field, Client};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn rca8_blif() -> String {
    blif::write(&als_circuits::adders::ripple_carry_adder(8))
}

/// Submits a quick job and asserts it completes — the "pool still serves"
/// probe run after every injected fault.
fn assert_pool_accepts_next_job(client: &mut Client) {
    client.send(&synth_request(
        "probe",
        "blif",
        &rca8_blif(),
        0.05,
        "multi",
        7,
        "fixed:64",
        false,
    ));
    let result = client.recv_type("result");
    assert_eq!(str_field(&result, "status"), "done");
}

/// A request line for the slow job used to occupy a worker (c880 single
/// selection: seconds per iteration in debug builds).
fn slow_job(id: &str, progress: bool) -> String {
    synth_request(id, "bench", "c880", 0.2, "single", 1, "fixed:256", progress)
}

/// Polls `stats` until the queue drains (the worker picked up the job).
fn wait_until_queue_empty(client: &mut Client) {
    for _ in 0..200 {
        client.send(r#"{"v":1,"type":"stats"}"#);
        let stats = client.recv_type("stats");
        if u64_field(&stats, "queue_depth") == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("queue never drained");
}

#[test]
fn client_disconnect_mid_stream_cancels_the_job_and_frees_the_worker() {
    let mut config = ServeConfig::new("");
    config.workers = 1;
    let daemon = start(config);

    // Client one starts a long streaming job and vanishes mid-stream.
    {
        let mut doomed = Client::connect(daemon.addr());
        doomed.send(&slow_job("doomed", true));
        doomed.recv_type("accepted");
        doomed.recv_type("progress");
    } // both stream halves drop here — an abrupt disconnect

    // The reader thread observes EOF and trips the job's cancel token, so
    // the single worker frees at the next iteration boundary and serves
    // client two. The generous client read timeout bounds this wait.
    let mut client = Client::connect(daemon.addr());
    assert_pool_accepts_next_job(&mut client);
}

#[test]
fn oversized_frame_is_a_typed_error_and_a_closed_connection() {
    let mut config = ServeConfig::new("");
    config.max_frame_bytes = 1024;
    let daemon = start(config);

    let mut client = Client::connect(daemon.addr());
    let huge = format!(
        "{{\"v\":1,\"type\":\"ping\",\"pad\":\"{}\"}}",
        "x".repeat(4096)
    );
    client.send(&huge);
    let err = client.recv_type("error");
    assert_eq!(str_field(&err, "code"), "oversized_frame");
    // The daemon closes the connection after the error frame.
    assert!(client.try_recv().is_none(), "connection not closed");

    // The daemon itself is unharmed.
    let mut client = Client::connect(daemon.addr());
    client.send(r#"{"v":1,"type":"ping"}"#);
    assert_eq!(str_field(&client.recv(), "type"), "pong");
}

#[test]
fn truncated_frame_at_eof_is_clean_teardown() {
    let daemon = start(ServeConfig::new(""));

    // Write half a frame — no terminating newline — and hang up.
    let mut raw = TcpStream::connect(daemon.addr()).expect("connect");
    raw.write_all(br#"{"v":1,"type":"synthesize","id":"trunc"#)
        .expect("partial write");
    drop(raw);

    // No panic, no wedged reader: the daemon still answers.
    let mut client = Client::connect(daemon.addr());
    client.send(r#"{"v":1,"type":"ping"}"#);
    assert_eq!(str_field(&client.recv(), "type"), "pong");
}

#[test]
fn full_admission_queue_rejects_with_queue_full_then_recovers() {
    let mut config = ServeConfig::new("");
    config.workers = 1;
    config.queue_capacity = 1;
    let daemon = start(config);
    let mut client = Client::connect(daemon.addr());

    // Occupy the single worker…
    client.send(&slow_job("running", false));
    client.recv_type("accepted");
    wait_until_queue_empty(&mut client);
    // …fill the queue…
    client.send(&slow_job("queued", false));
    client.recv_type("accepted");
    // …and overflow it: typed rejection carrying the request id.
    client.send(&slow_job("rejected", false));
    let err = client.recv_type("error");
    assert_eq!(str_field(&err, "code"), "queue_full");
    assert_eq!(str_field(&err, "id"), "rejected");

    // Cancel both admitted jobs; each still yields a (cancelled) result
    // frame. Acknowledgements and results race on the wire, so count
    // frames by type rather than assuming an order.
    client.send(r#"{"v":1,"type":"cancel","id":"running"}"#);
    client.send(r#"{"v":1,"type":"cancel","id":"queued"}"#);
    let (mut cancel_oks, mut results) = (0, 0);
    while cancel_oks < 2 || results < 2 {
        let frame = client.recv();
        match str_field(&frame, "type").to_string().as_str() {
            "cancel_ok" => cancel_oks += 1,
            "result" => {
                assert_eq!(str_field(&frame, "status"), "cancelled");
                results += 1;
            }
            other => panic!("unexpected `{other}` frame: {}", frame.render()),
        }
    }

    // Queue space and the worker slot are both back.
    assert_pool_accepts_next_job(&mut client);
}

#[test]
fn admission_rejects_budgets_above_the_daemon_caps() {
    let mut config = ServeConfig::new("");
    config.max_patterns = 512;
    config.max_iterations = 50;
    let daemon = start(config);
    let mut client = Client::connect(daemon.addr());

    // Pattern budget above the cap.
    client.send(&synth_request(
        "pat",
        "blif",
        &rca8_blif(),
        0.05,
        "multi",
        7,
        "fixed:1024",
        false,
    ));
    let err = client.recv_type("error");
    assert_eq!(str_field(&err, "code"), "bad_config");
    assert_eq!(str_field(&err, "id"), "pat");

    // Iteration budget above the cap.
    let line = format!(
        "{{\"v\":1,\"type\":\"synthesize\",\"id\":\"iter\",\"circuit\":{{\"blif\":{}}},\"threshold\":0.05,\"max_iterations\":51}}",
        Json::from(rca8_blif().as_str()).render()
    );
    client.send(&line);
    let err = client.recv_type("error");
    assert_eq!(str_field(&err, "code"), "bad_config");

    // Nonsense threshold.
    client.send(&synth_request(
        "thr",
        "blif",
        &rca8_blif(),
        42.0,
        "multi",
        7,
        "fixed:64",
        false,
    ));
    let err = client.recv_type("error");
    assert_eq!(str_field(&err, "code"), "bad_config");

    // In-budget requests still fly on the same connection.
    client.send(&synth_request(
        "ok",
        "blif",
        &rca8_blif(),
        0.05,
        "multi",
        7,
        "fixed:256",
        false,
    ));
    assert_eq!(str_field(&client.recv_type("result"), "status"), "done");
}

#[test]
fn malformed_lines_get_typed_errors_and_the_connection_survives() {
    let daemon = start(ServeConfig::new(""));
    let mut client = Client::connect(daemon.addr());

    for (line, code) in [
        ("$$$ not json $$$", "bad_json"),
        (r#"{"v":9,"type":"ping"}"#, "unsupported_version"),
        (r#"{"v":1,"type":"teleport"}"#, "bad_request"),
        (
            r#"{"v":1,"type":"synthesize","id":"x","circuit":{},"threshold":0.1}"#,
            "bad_request",
        ),
    ] {
        client.send(line);
        let err = client.recv_type("error");
        assert_eq!(str_field(&err, "code"), code, "line: {line}");
    }

    // An unknown benchmark is admitted, then fails in the worker with a
    // typed error — and the worker itself survives to run the next job.
    client.send(&synth_request(
        "ghost",
        "bench",
        "no-such-circuit",
        0.05,
        "multi",
        7,
        "fixed:64",
        false,
    ));
    let err = client.recv_type("error");
    assert_eq!(str_field(&err, "code"), "bad_circuit");
    assert_eq!(str_field(&err, "id"), "ghost");

    // Unparseable inline BLIF: same typed path.
    client.send(&synth_request(
        "bad-blif",
        "blif",
        ".model broken\n.nonsense\n",
        0.05,
        "multi",
        7,
        "fixed:64",
        false,
    ));
    let err = client.recv_type("error");
    assert_eq!(str_field(&err, "code"), "bad_circuit");

    assert_pool_accepts_next_job(&mut client);
    // The failures above were counted, not hidden.
    client.send(r#"{"v":1,"type":"stats"}"#);
    let stats = client.recv_type("stats");
    assert_eq!(u64_field(&stats, "jobs_failed"), 2);

    // `found:false` — cancel for a job this connection never admitted.
    client.send(r#"{"v":1,"type":"cancel","id":"martian"}"#);
    assert!(!bool_field(&client.recv_type("cancel_ok"), "found"));
}
