//! `als-serve` — a long-running synthesis service with a cross-job
//! artifact cache.
//!
//! The CLI's one-shot commands re-do the expensive circuit-independent
//! work — BLIF parsing, golden-signature simulation, abstract-interpretation
//! probability bounds, technology mapping — on every invocation. When a
//! designer sweeps thresholds over the same circuit, that work is identical
//! each time. This crate packages the synthesis flow as a daemon
//! (`als serve --listen ADDR`) so repeated requests amortize it:
//!
//! - **Protocol** ([`protocol`]): line-delimited JSON over TCP. Every frame
//!   carries `"v":` [`PROTOCOL_VERSION`]; requests are `synthesize`,
//!   `cancel`, `stats`, `ping`, `shutdown`, and responses are `accepted`,
//!   `progress`, `result`, `stats`, `pong`, `bye`, or a typed `error`
//!   frame ([`ErrorCode`]). The parser is total: arbitrary bytes produce a
//!   structured error, never a panic.
//! - **Artifact cache** ([`ArtifactCache`]): keyed by a content hash of the
//!   circuit source. A hit skips parse + mapping + absint; golden
//!   simulation signatures are cached one level deeper, per
//!   `(pattern budget, seed)`, so a repeat request at a *new threshold*
//!   skips every phase but the selection loop itself — and still returns
//!   results byte-identical to a cold one-shot `als_core::approximate`
//!   call, because the cached stimulus is exactly what that call would
//!   have drawn.
//! - **Admission & execution** ([`Server`]): a bounded queue (typed
//!   `queue_full` rejection), a fixed worker pool, per-job budget caps,
//!   and cooperative cancellation via `als_core::CancelToken` — tripped by
//!   a `cancel` request, a mid-stream disconnect, or daemon shutdown.
//!
//! Cache traffic is observable: every lookup emits an `artifact_cache`
//! telemetry event (schema v7) and the per-job `MetricsReport` carries
//! `artifact_cache_hits` / `artifact_cache_misses`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

mod cache;
mod protocol;
mod server;

pub use cache::{ArtifactCache, CircuitArtifacts, ARTIFACT_KINDS, CIRCUIT_LEVEL_ARTIFACTS};
pub use protocol::{
    frame, parse_pattern_spec, parse_request, strategy_wire_name, CircuitSource, ErrorCode,
    ProtocolError, Request, SynthesizeRequest, PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server, ServerHandle};
