//! The cross-job artifact cache — the heart of the daemon.
//!
//! Every synthesis job needs the same expensive prologue: parse (or
//! generate) the circuit, technology-map it for the golden area/delay
//! headline, run the abstract interpreter's signal-probability pass, and
//! simulate the golden network once per (pattern budget, seed) to freeze
//! the reference signatures. `als sweep` already amortizes that prologue
//! *within* one process invocation; this cache amortizes it *across*
//! requests: entries are keyed by circuit content hash
//! ([`CircuitSource::cache_key`]), so a repeated request for the same
//! circuit at a new threshold skips the parse, mapping, absint and
//! golden-simulation phases entirely and goes straight to the selection
//! loop.
//!
//! Byte-identity is preserved by construction: a cached [`AlsContext`] is
//! exactly the `AlsContext::with_patterns` result `AlsContext::new` would
//! build for the same `(PI count, pattern budget, seed)` triple, and each
//! job re-attaches its own telemetry handle and sampling policy to a clone
//! (see `als_core::approximate_with_context`), so warm results are
//! bit-for-bit the results a cold single-shot `approximate()` would
//! return.

use crate::protocol::{CircuitSource, ErrorCode, ProtocolError};
use als_core::{AlsConfig, AlsContext};
use als_mapper::{map_network, DelayMap, Library};
use als_network::{blif, Network};
use als_sim::PatternSet;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Wire names of the artifacts the cache amortizes, as reported in
/// `artifact_cache` telemetry events and result-frame `"cache"` objects.
pub const ARTIFACT_KINDS: [&str; 4] = ["network", "signatures", "absint", "delay_map"];

/// Everything the daemon derives from one circuit, shared across jobs.
#[derive(Debug)]
pub struct CircuitArtifacts {
    /// The parsed (and consistency-checked) network.
    pub network: Arc<Network>,
    /// Golden literal count.
    pub golden_literals: u64,
    /// Golden mapped area (MCNC-like library).
    pub golden_area: f64,
    /// Golden mapped critical-path delay.
    pub golden_delay: f64,
    /// The golden network's topological delay map (arrival times and
    /// criticalities), kept for delay-aware scoring and diagnostics.
    pub delay_map: DelayMap,
    /// Nodes the abstract interpreter forced to worst-case Fréchet bounds
    /// (reconvergent fanout).
    pub absint_frechet_nodes: u64,
    /// Widest golden PO signal-probability interval.
    pub absint_max_po_width: f64,
    /// Golden-simulation contexts, one per (pattern budget, seed). Built
    /// under the lock so concurrent first requests for the same stimulus
    /// simulate the golden network once, not twice.
    contexts: Mutex<BTreeMap<(usize, u64), AlsContext>>,
}

impl CircuitArtifacts {
    /// Builds the circuit-level artifacts: mapping, delay map, absint
    /// summary. The golden-simulation contexts are filled lazily by
    /// [`CircuitArtifacts::context`].
    fn build(network: Network) -> CircuitArtifacts {
        let lib = Library::mcnc_like();
        let mapped = map_network(&network, &lib);
        let delay_map = DelayMap::build(&network, &lib);
        let probs = als_absint::signal_probabilities(&network, als_absint::Policy::Exact);
        let absint_max_po_width = network
            .pos()
            .iter()
            .map(|(_, driver)| {
                let i = probs.interval(*driver);
                i.hi - i.lo
            })
            .fold(0.0, f64::max);
        CircuitArtifacts {
            golden_literals: network.literal_count() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            golden_area: mapped.area(),
            golden_delay: mapped.delay(),
            delay_map,
            absint_frechet_nodes: probs.frechet_count() as u64, // lint:allow(as-cast): usize fits u64 on all supported targets
            absint_max_po_width,
            network: Arc::new(network),
            contexts: Mutex::new(BTreeMap::new()),
        }
    }

    /// A golden-simulation context for the config's (pattern budget, seed),
    /// with the config's telemetry and sampling policy attached — ready to
    /// hand to `approximate_with_context`. Returns whether the context was
    /// served from the cache (`true`) or simulated fresh (`false`).
    pub fn context(&self, config: &AlsConfig) -> (AlsContext, bool) {
        let key = (config.pattern_budget(), config.seed);
        let mut contexts = self.contexts.lock().unwrap_or_else(PoisonError::into_inner);
        let (ctx, hit) = if let Some(ctx) = contexts.get(&key) {
            (ctx.clone(), true)
        } else {
            let patterns = PatternSet::random(self.network.num_pis(), key.0, key.1);
            let ctx = AlsContext::with_patterns(&self.network, patterns);
            contexts.insert(key, ctx.clone());
            (ctx, false)
        };
        drop(contexts);
        (
            ctx.with_telemetry(config.telemetry.clone())
                .with_sampling(config),
            hit,
        )
    }

    /// Golden-simulation contexts currently cached for this circuit.
    pub fn num_contexts(&self) -> usize {
        self.contexts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// The FIFO-evicting cross-job cache, keyed by circuit content hash.
///
/// Counters tally *artifact-level* lookups: a circuit-entry hit serves
/// three artifacts at once (network, absint summary, delay map) and counts
/// as three hits; each golden-signature context lookup counts separately.
/// These are the numbers the daemon's `stats` frame reports and the
/// per-job `MetricsReport.artifact_cache_{hits,misses}` counters break
/// down per job.
#[derive(Debug)]
pub struct ArtifactCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: BTreeMap<u64, Arc<CircuitArtifacts>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
}

/// Artifacts a circuit-entry lookup serves at once (network + absint +
/// delay map); golden-signature contexts are counted separately.
pub const CIRCUIT_LEVEL_ARTIFACTS: u64 = 3;

impl ArtifactCache {
    /// A cache holding at most `capacity` circuits (at least one).
    pub fn new(capacity: usize) -> ArtifactCache {
        ArtifactCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Resolves a circuit source to its shared artifacts, building (and
    /// caching) them on first sight. Returns whether the circuit entry was
    /// a cache hit. The build runs under the cache lock, so a burst of
    /// first requests for one circuit parses and maps it exactly once.
    pub fn lookup(
        &self,
        source: &CircuitSource,
    ) -> Result<(Arc<CircuitArtifacts>, bool), ProtocolError> {
        let key = source.cache_key();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(arts) = inner.entries.get(&key) {
            self.hits
                .fetch_add(CIRCUIT_LEVEL_ARTIFACTS, Ordering::Relaxed);
            return Ok((Arc::clone(arts), true));
        }
        let network = resolve_network(source)?;
        let arts = Arc::new(CircuitArtifacts::build(network));
        inner.entries.insert(key, Arc::clone(&arts));
        inner.order.push_back(key);
        while inner.order.len() > self.capacity {
            if let Some(evicted) = inner.order.pop_front() {
                inner.entries.remove(&evicted);
            }
        }
        self.misses
            .fetch_add(CIRCUIT_LEVEL_ARTIFACTS, Ordering::Relaxed);
        Ok((arts, false))
    }

    /// Tallies one golden-signature context lookup (the `"signatures"`
    /// artifact) into the cache counters.
    pub fn record_context_lookup(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Artifact-level cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Artifact-level cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Circuits currently cached.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
            .len()
    }

    /// Whether the cache holds no circuits yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Resolves a circuit source into a consistency-checked network.
fn resolve_network(source: &CircuitSource) -> Result<Network, ProtocolError> {
    let network = match source {
        CircuitSource::Blif(text) => blif::parse(text).map_err(|e| {
            ProtocolError::new(ErrorCode::BadCircuit, format!("BLIF parse error: {e}"))
        })?,
        CircuitSource::Bench(name) => {
            let bench = als_circuits::registry::find_benchmark(name).ok_or_else(|| {
                ProtocolError::new(
                    ErrorCode::BadCircuit,
                    format!("unknown benchmark `{name}` (see `als list`)"),
                )
            })?;
            (bench.build)()
        }
    };
    network.check().map_err(|e| {
        ProtocolError::new(
            ErrorCode::BadCircuit,
            format!("network fails its consistency check: {e}"),
        )
    })?;
    Ok(network)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(name: &str) -> CircuitSource {
        CircuitSource::Bench(name.to_string())
    }

    #[test]
    fn second_lookup_hits_and_shares_the_entry() {
        let cache = ArtifactCache::new(4);
        let (a, hit_a) = cache.lookup(&bench("RCA32")).unwrap();
        let (b, hit_b) = cache.lookup(&bench("RCA32")).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), CIRCUIT_LEVEL_ARTIFACTS);
        assert_eq!(cache.misses(), CIRCUIT_LEVEL_ARTIFACTS);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn artifacts_carry_the_golden_summary() {
        let cache = ArtifactCache::new(4);
        let (arts, _) = cache.lookup(&bench("RCA32")).unwrap();
        assert!(arts.golden_literals > 0);
        assert!(arts.golden_area > 0.0);
        assert!(arts.golden_delay > 0.0);
        assert!(arts.delay_map.critical() > 0.0);
        assert!(arts.absint_max_po_width >= 0.0);
    }

    #[test]
    fn context_cache_is_keyed_by_budget_and_seed() {
        let cache = ArtifactCache::new(4);
        let (arts, _) = cache.lookup(&bench("RCA32")).unwrap();
        let config_a = AlsConfig::builder()
            .threshold(0.05)
            .patterns(als_core::PatternPolicy::Fixed(256))
            .seed(1)
            .build()
            .unwrap();
        let (_, hit1) = arts.context(&config_a);
        let (_, hit2) = arts.context(&config_a);
        assert!(!hit1);
        assert!(hit2);
        let config_b = AlsConfig::builder()
            .threshold(0.20)
            .patterns(als_core::PatternPolicy::Fixed(256))
            .seed(1)
            .build()
            .unwrap();
        // A new threshold reuses the same stimulus entry.
        let (_, hit3) = arts.context(&config_b);
        assert!(hit3);
        let config_c = AlsConfig::builder()
            .threshold(0.05)
            .patterns(als_core::PatternPolicy::Fixed(256))
            .seed(2)
            .build()
            .unwrap();
        let (_, hit4) = arts.context(&config_c);
        assert!(!hit4);
        assert_eq!(arts.num_contexts(), 2);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let cache = ArtifactCache::new(2);
        cache.lookup(&bench("RCA32")).unwrap();
        cache.lookup(&bench("CLA32")).unwrap();
        cache.lookup(&bench("KSA32")).unwrap();
        assert_eq!(cache.len(), 2);
        // RCA32 (the oldest) was evicted: looking it up again is a miss.
        let (_, hit) = cache.lookup(&bench("RCA32")).unwrap();
        assert!(!hit);
    }

    #[test]
    fn unknown_sources_are_typed_errors() {
        let cache = ArtifactCache::new(2);
        let err = cache.lookup(&bench("no-such-bench")).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadCircuit);
        let err = cache
            .lookup(&CircuitSource::Blif("not blif".to_string()))
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadCircuit);
        assert_eq!(cache.len(), 0);
    }
}
