//! The TCP daemon: admission queue, worker pool, connection handling.
//!
//! One thread accepts connections; each connection gets a reader thread
//! that parses request lines (byte-capped, so an oversized frame is a
//! typed error, not an allocation bomb) and answers control requests
//! inline. `"synthesize"` requests pass admission control — budget caps
//! checked, bounded queue with typed `queue_full` rejection — and are
//! picked up by a fixed pool of worker threads. Workers run jobs through
//! the cross-job [`ArtifactCache`](crate::ArtifactCache) and
//! `als_core::approximate_with_context`, stream per-iteration progress
//! frames when asked, and are panic-isolated: a job that fails returns an
//! `"internal"` error frame and the worker keeps serving.
//!
//! Cancellation is cooperative end to end: every admitted job carries an
//! armed `CancelToken`; a `"cancel"` request (connection-scoped, by
//! request id) or a client disconnect trips it, the selection loop stops
//! at the next iteration boundary, and the worker slot frees without
//! disturbing concurrent jobs.

use crate::cache::ArtifactCache;
use crate::protocol::{
    frame, parse_request, strategy_wire_name, ErrorCode, ProtocolError, Request, SynthesizeRequest,
    PROTOCOL_VERSION,
};
use als_core::{
    approximate_with_context, AlsConfig, AlsError, CancelToken, Event, MetricsCollector, Telemetry,
    TelemetrySink,
};
use als_network::blif;
use als_telemetry::Json;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Daemon configuration: listen address, pool sizes, per-job budget caps.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7171` (port 0 picks an ephemeral
    /// port; see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Admission-queue capacity; a full queue rejects with `queue_full`.
    pub queue_capacity: usize,
    /// Maximum request-line length in bytes; longer frames are rejected
    /// with `oversized_frame` and the connection is closed.
    pub max_frame_bytes: usize,
    /// Per-job pattern-budget cap: requests whose policy budget exceeds
    /// this are rejected at admission with `bad_config`.
    pub max_patterns: usize,
    /// Per-job iteration cap; requested `max_iterations` are clamped to it
    /// and requests above it are rejected at admission with `bad_config`.
    pub max_iterations: usize,
    /// Circuits the artifact cache retains (FIFO eviction).
    pub cache_capacity: usize,
}

impl ServeConfig {
    /// Defaults for everything but the listen address.
    pub fn new(addr: impl Into<String>) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            workers: 0,
            queue_capacity: 16,
            max_frame_bytes: 4 << 20,
            max_patterns: 1 << 20,
            max_iterations: 10_000,
            cache_capacity: 8,
        }
    }
}

/// One admitted job, queued for a worker.
struct Job {
    id: u64,
    request: SynthesizeRequest,
    conn: Arc<ConnWriter>,
    cancel: CancelToken,
}

/// State shared by the acceptor, reader threads and workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    shutdown: AtomicBool,
    cache: ArtifactCache,
    limits: ServeConfig,
    local_addr: SocketAddr,
    /// Daemon-level telemetry (job_admitted / artifact_cache lines).
    telemetry: Telemetry,
    jobs_admitted: AtomicU64,
    jobs_done: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_failed: AtomicU64,
    workers: usize,
}

impl Shared {
    fn queue_depth(&self) -> u64 {
        let depth = self
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len();
        depth as u64 // lint:allow(as-cast): usize fits u64 on all supported targets
    }
}

/// The serialized write half of one client connection. Any thread (reader,
/// workers streaming progress) may send frames; a failed write marks the
/// connection dead so later sends become cheap no-ops.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> ConnWriter {
        ConnWriter {
            stream: Mutex::new(stream),
            dead: AtomicBool::new(false),
        }
    }

    /// Writes one frame line; returns whether the connection is still
    /// usable.
    fn send(&self, frame: &Json) -> bool {
        if self.dead.load(Ordering::Acquire) {
            return false;
        }
        let mut stream = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        let line = frame.render();
        let ok = writeln!(stream, "{line}")
            .and_then(|()| stream.flush())
            .is_ok();
        if !ok {
            self.dead.store(true, Ordering::Release);
        }
        ok
    }
}

/// A telemetry sink that forwards run milestones (`run_start`,
/// `iteration_end`, `run_end`) to the client as `"progress"` frames. A
/// failed send — the client disconnected mid-stream — trips the job's
/// cancellation token so the worker slot frees at the next iteration
/// boundary instead of streaming into a dead socket.
#[derive(Debug)]
struct ProgressSink {
    conn: Arc<ConnWriter>,
    id: String,
    job_id: u64,
    cancel: CancelToken,
}

impl TelemetrySink for ProgressSink {
    fn record(&self, event: &Event) {
        if !matches!(
            event,
            Event::RunStart { .. } | Event::IterationEnd { .. } | Event::RunEnd { .. }
        ) {
            return;
        }
        let mut obj = frame("progress");
        obj.set("id", self.id.as_str())
            .set("job", self.job_id)
            .set("event", event.to_json());
        if !self.conn.send(&obj) {
            self.cancel.cancel();
        }
    }
}

// `ConnWriter` holds no debug-interesting state beyond liveness.
impl std::fmt::Debug for ConnWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnWriter")
            .field("dead", &self.dead.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A handle for stopping a running [`Server`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.shared.local_addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Requests shutdown: no new jobs are admitted, workers drain and
    /// exit, the accept loop wakes and returns. Idempotent.
    pub fn shutdown(&self) {
        request_shutdown(&self.shared);
    }
}

/// Sets the shutdown flag and wakes every blocked thread: workers via the
/// queue condvar, the acceptor via a throwaway local connection.
fn request_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::Release);
    shared.job_ready.notify_all();
    // The acceptor blocks in `accept()`; a loopback connection wakes it so
    // it can observe the flag. The connection itself is discarded.
    drop(TcpStream::connect(shared.local_addr));
}

/// The `als serve` daemon. [`Server::bind`] opens the listener (so tests
/// can learn the ephemeral port before serving); [`Server::run`] blocks
/// until a shutdown request.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.shared.local_addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listen address and starts the worker pool. `telemetry`
    /// receives daemon-level events (`job_admitted`, `artifact_cache`);
    /// pass `Telemetry::disabled()` for none.
    pub fn bind(config: &ServeConfig, telemetry: Telemetry) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: ArtifactCache::new(config.cache_capacity),
            limits: config.clone(),
            local_addr,
            telemetry,
            jobs_admitted: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            workers,
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server {
            listener,
            shared,
            workers: handles,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Resolved worker-pool size.
    pub fn num_workers(&self) -> usize {
        self.shared.workers
    }

    /// A handle that can stop the daemon from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until shutdown: accepts connections, spawning one reader
    /// thread each, then drains the queue (rejecting still-queued jobs
    /// with `shutting_down`) and joins the workers.
    pub fn run(self) -> std::io::Result<()> {
        for incoming in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = incoming else { continue };
            let shared = Arc::clone(&self.shared);
            // Reader threads exit when their client disconnects (or on the
            // oversized-frame hard close); they are deliberately detached —
            // joining them would mean waiting on arbitrary clients.
            std::thread::spawn(move || handle_connection(stream, &shared));
        }
        // Reject whatever is still queued, then let the workers drain.
        let pending: Vec<Job> = {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            queue.drain(..).collect()
        };
        for job in pending {
            let err = ProtocolError::new(ErrorCode::ShuttingDown, "daemon is shutting down")
                .with_id(job.request.id.clone());
            job.conn.send(&err.frame());
        }
        self.shared.job_ready.notify_all();
        for worker in self.workers {
            // A worker that panicked despite the per-job isolation is
            // already accounted for; there is nothing further to unwind.
            drop(worker.join());
        }
        Ok(())
    }
}

/// Worker loop: claim jobs until shutdown.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared
                    .job_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        execute_job(shared, &job);
    }
}

/// Runs one job with panic isolation: a panicking job yields an
/// `"internal"` error frame and the worker keeps serving.
fn execute_job(shared: &Arc<Shared>, job: &Job) {
    let outcome = catch_unwind(AssertUnwindSafe(|| run_job(shared, job)));
    match outcome {
        Ok(Ok(result_frame)) => {
            job.conn.send(&result_frame);
        }
        Ok(Err(err)) => {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            job.conn.send(&err.with_id(job.request.id.clone()).frame());
        }
        Err(_) => {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            let err = ProtocolError::new(
                ErrorCode::Internal,
                "worker failed unexpectedly while running the job",
            )
            .with_id(job.request.id.clone());
            job.conn.send(&err.frame());
        }
    }
}

/// The job body: resolve artifacts through the cache, synthesize, render
/// the result frame.
fn run_job(shared: &Arc<Shared>, job: &Job) -> Result<Json, ProtocolError> {
    let req = &job.request;
    let collector = Arc::new(MetricsCollector::new());
    let mut job_telemetry = Telemetry::new(Arc::clone(&collector) as Arc<dyn TelemetrySink>);
    if req.progress {
        job_telemetry = job_telemetry.with(Arc::new(ProgressSink {
            conn: Arc::clone(&job.conn),
            id: req.id.clone(),
            job_id: job.id,
            cancel: job.cancel.clone(),
        }));
    }

    // Phase 1: circuit artifacts (parse + map + absint), cached across
    // jobs. `job_telemetry` always has the collector attached, so the
    // phase marks are live.
    let parse_mark = job_telemetry.start();
    let (arts, circuit_hit) = shared.cache.lookup(&req.source)?;
    let parse_nanos = if circuit_hit {
        0
    } else {
        Telemetry::nanos_since(parse_mark)
    };

    let mut builder = AlsConfig::builder().threshold(req.threshold);
    if let Some(seed) = req.seed {
        builder = builder.seed(seed);
    }
    if let Some(patterns) = req.patterns {
        builder = builder.patterns(patterns);
    }
    builder = builder.max_iterations(
        req.max_iterations
            .unwrap_or(shared.limits.max_iterations)
            .min(shared.limits.max_iterations),
    );
    builder = builder.cancel(job.cancel.clone());
    let mut config = builder
        .build()
        .map_err(|e| ProtocolError::new(ErrorCode::BadConfig, e.to_string()))?;
    config.telemetry = job_telemetry.clone();

    // Phase 2: golden signatures, cached per (pattern budget, seed).
    let context_mark = job_telemetry.start();
    let (ctx, signatures_hit) = arts.context(&config);
    let context_nanos = if signatures_hit {
        0
    } else {
        Telemetry::nanos_since(context_mark)
    };
    shared.cache.record_context_lookup(signatures_hit);

    // One artifact_cache line per artifact kind, on both the daemon log
    // and the job's own metrics stream.
    for (artifact, hit) in [
        ("network", circuit_hit),
        ("absint", circuit_hit),
        ("delay_map", circuit_hit),
        ("signatures", signatures_hit),
    ] {
        shared
            .telemetry
            .emit(|| Event::ArtifactCache { artifact, hit });
        job_telemetry.emit(|| Event::ArtifactCache { artifact, hit });
    }

    // Phase 3: the selection loop itself.
    let synth_mark = job_telemetry.start();
    let outcome = approximate_with_context(&arts.network, req.strategy, &config, ctx).map_err(
        |e| match e {
            AlsError::InvalidNetwork(m) => ProtocolError::new(ErrorCode::BadCircuit, m),
            other => ProtocolError::new(ErrorCode::BadConfig, other.to_string()),
        },
    )?;
    let synth_nanos = Telemetry::nanos_since(synth_mark);

    let cancelled = job.cancel.is_cancelled();
    if cancelled {
        shared.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.jobs_done.fetch_add(1, Ordering::Relaxed);
    }

    // The outcome's metrics come from the run's internal collector; the
    // artifact-cache counters are daemon-level facts, populated externally
    // (the `mapped_delay` precedent).
    let mut metrics = outcome.metrics.clone();
    let report = collector.report();
    metrics.artifact_cache_hits = report.artifact_cache_hits;
    metrics.artifact_cache_misses = report.artifact_cache_misses;

    let mut cache_obj = Json::object();
    cache_obj
        .set("network", circuit_hit)
        .set("absint", circuit_hit)
        .set("delay_map", circuit_hit)
        .set("signatures", signatures_hit);
    let mut timings = Json::object();
    timings
        .set("parse_s", nanos_to_secs(parse_nanos))
        .set("context_s", nanos_to_secs(context_nanos))
        .set("synth_s", nanos_to_secs(synth_nanos));
    let mut golden = Json::object();
    golden
        .set("literals", arts.golden_literals)
        .set("area", arts.golden_area)
        .set("delay", arts.golden_delay)
        .set("absint_frechet_nodes", arts.absint_frechet_nodes)
        .set("absint_max_po_width", arts.absint_max_po_width);

    let mut result = frame("result");
    result
        .set("id", req.id.as_str())
        .set("job", job.id)
        .set("status", if cancelled { "cancelled" } else { "done" })
        .set("algorithm", strategy_wire_name(req.strategy))
        .set("iterations", outcome.iterations.len())
        .set("initial_literals", outcome.initial_literals)
        .set("final_literals", outcome.final_literals)
        .set("error_rate", outcome.measured_error_rate)
        .set("golden", golden)
        .set("cache", cache_obj)
        .set("timings", timings)
        .set("metrics", metrics.to_json())
        .set("blif", blif::write(&outcome.network));
    Ok(result)
}

/// Nanoseconds → seconds for frame timings.
fn nanos_to_secs(nanos: u64) -> f64 {
    std::time::Duration::from_nanos(nanos).as_secs_f64()
}

/// Reads one `\n`-terminated line with a byte cap. `Ok(None)` is a clean
/// EOF; `Err(true)` means the cap was exceeded; `Err(false)` is an I/O
/// error. A truncated final line (EOF before `\n`) is treated as clean
/// teardown — clients that die mid-frame never leave a wedged reader.
fn read_line_capped(reader: &mut BufReader<TcpStream>, cap: usize) -> Result<Option<String>, bool> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf().map_err(|_| false)?;
        if buf.is_empty() {
            // EOF: a complete unterminated line would be data loss, but a
            // client that closes mid-frame has abandoned the request.
            return Ok(None);
        }
        let (chunk, found_newline) = match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos, true),
            None => (buf.len(), false),
        };
        if line.len() + chunk > cap {
            return Err(true);
        }
        line.extend_from_slice(&buf[..chunk]);
        let consumed = if found_newline { chunk + 1 } else { chunk };
        reader.consume(consumed);
        if found_newline {
            let text = String::from_utf8_lossy(&line).into_owned();
            return Ok(Some(text));
        }
    }
}

/// Per-connection reader loop.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let conn = match stream.try_clone() {
        Ok(write_half) => Arc::new(ConnWriter::new(write_half)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Connection-scoped job registry: `cancel` can only reach jobs
    // admitted on the same connection.
    let mut cancels: BTreeMap<String, CancelToken> = BTreeMap::new();
    loop {
        let line = match read_line_capped(&mut reader, shared.limits.max_frame_bytes) {
            Ok(Some(line)) => line,
            Ok(None) | Err(false) => break,
            Err(true) => {
                let err = ProtocolError::new(
                    ErrorCode::OversizedFrame,
                    format!(
                        "request line exceeds the {}-byte frame cap",
                        shared.limits.max_frame_bytes
                    ),
                );
                conn.send(&err.frame());
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse_request(&line) {
            Ok(request) => request,
            Err(err) => {
                conn.send(&err.frame());
                continue;
            }
        };
        match request {
            Request::Ping => {
                conn.send(&frame("pong"));
            }
            Request::Stats => {
                conn.send(&stats_frame(shared));
            }
            Request::Shutdown => {
                conn.send(&frame("bye"));
                request_shutdown(shared);
                break;
            }
            Request::Cancel { id } => {
                let found = cancels.get(&id).is_some_and(|token| {
                    token.cancel();
                    true
                });
                let mut obj = frame("cancel_ok");
                obj.set("id", id.as_str()).set("found", found);
                conn.send(&obj);
            }
            Request::Synthesize(req) => match admit(shared, req, &conn) {
                Ok((id, token)) => {
                    cancels.insert(id, token);
                }
                Err(err) => {
                    conn.send(&err.frame());
                }
            },
        }
    }
    // Client gone: tear down its in-flight jobs so workers free up
    // instead of synthesizing into a dead socket.
    conn.dead.store(true, Ordering::Release);
    for token in cancels.values() {
        token.cancel();
    }
}

/// Admission control: budget caps, then the bounded queue. Success sends
/// the `"accepted"` frame and returns the (id, cancel token) pair for the
/// connection's registry.
fn admit(
    shared: &Arc<Shared>,
    request: SynthesizeRequest,
    conn: &Arc<ConnWriter>,
) -> Result<(String, CancelToken), ProtocolError> {
    let id = request.id.clone();
    let reject = |code: ErrorCode, message: String| {
        Err(ProtocolError::new(code, message).with_id(id.clone()))
    };
    if shared.shutdown.load(Ordering::Acquire) {
        return reject(
            ErrorCode::ShuttingDown,
            "daemon is shutting down".to_string(),
        );
    }
    if !request.threshold.is_finite() || request.threshold <= 0.0 || request.threshold >= 1.0 {
        return reject(
            ErrorCode::BadConfig,
            format!(
                "threshold {} outside the open interval (0, 1)",
                request.threshold
            ),
        );
    }
    if let Some(patterns) = &request.patterns {
        if patterns.budget() > shared.limits.max_patterns {
            return reject(
                ErrorCode::BadConfig,
                format!(
                    "pattern budget {} exceeds the daemon cap {}",
                    patterns.budget(),
                    shared.limits.max_patterns
                ),
            );
        }
    }
    if let Some(n) = request.max_iterations {
        if n > shared.limits.max_iterations {
            return reject(
                ErrorCode::BadConfig,
                format!(
                    "max_iterations {n} exceeds the daemon cap {}",
                    shared.limits.max_iterations
                ),
            );
        }
    }
    let cancel = CancelToken::armed();
    let (job_id, queue_depth) = {
        let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if queue.len() >= shared.limits.queue_capacity {
            drop(queue);
            return reject(
                ErrorCode::QueueFull,
                format!(
                    "admission queue is full ({} jobs)",
                    shared.limits.queue_capacity
                ),
            );
        }
        let job_id = shared.jobs_admitted.fetch_add(1, Ordering::Relaxed) + 1;
        queue.push_back(Job {
            id: job_id,
            request,
            conn: Arc::clone(conn),
            cancel: cancel.clone(),
        });
        let depth = queue.len() as u64; // lint:allow(as-cast): usize fits u64 on all supported targets
        (job_id, depth)
    };
    shared.job_ready.notify_one();
    shared.telemetry.emit(|| Event::JobAdmitted {
        job: job_id,
        queue_depth,
    });
    let mut accepted = frame("accepted");
    accepted
        .set("id", id.as_str())
        .set("job", job_id)
        .set("queue_depth", queue_depth);
    conn.send(&accepted);
    Ok((id, cancel))
}

/// The `"stats"` response frame.
fn stats_frame(shared: &Arc<Shared>) -> Json {
    let mut obj = frame("stats");
    obj.set("protocol", PROTOCOL_VERSION)
        .set("workers", shared.workers)
        .set("queue_depth", shared.queue_depth())
        .set("queue_capacity", shared.limits.queue_capacity)
        .set(
            "jobs_admitted",
            shared.jobs_admitted.load(Ordering::Relaxed),
        )
        .set("jobs_done", shared.jobs_done.load(Ordering::Relaxed))
        .set(
            "jobs_cancelled",
            shared.jobs_cancelled.load(Ordering::Relaxed),
        )
        .set("jobs_failed", shared.jobs_failed.load(Ordering::Relaxed))
        .set("cache_hits", shared.cache.hits())
        .set("cache_misses", shared.cache.misses())
        .set("cache_circuits", shared.cache.len());
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_line_capped_splits_lines_and_caps() {
        // Loopback pair: write a few frames, read them back capped.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        client.write_all(b"hello\nworld\n").unwrap();
        let mut reader = BufReader::new(server_side);
        assert_eq!(
            read_line_capped(&mut reader, 64).unwrap().as_deref(),
            Some("hello")
        );
        assert_eq!(
            read_line_capped(&mut reader, 64).unwrap().as_deref(),
            Some("world")
        );
        client.write_all(&[b'x'; 100]).unwrap();
        client.write_all(b"\n").unwrap();
        assert_eq!(read_line_capped(&mut reader, 64), Err(true));
    }

    #[test]
    fn truncated_final_line_is_clean_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        client.write_all(b"partial frame without newline").unwrap();
        drop(client);
        let mut reader = BufReader::new(server_side);
        assert_eq!(read_line_capped(&mut reader, 64).unwrap(), None);
    }
}
