//! The line-delimited JSONL wire protocol of `als serve`.
//!
//! Every frame — request, response, progress — is one JSON object on one
//! line, carrying `"v": 1` (see [`PROTOCOL_VERSION`]). Requests carry a
//! `"type"` of `"synthesize"`, `"cancel"`, `"stats"`, `"ping"` or
//! `"shutdown"`; responses answer with `"accepted"`, `"progress"`,
//! `"result"`, `"error"`, `"cancel_ok"`, `"stats"`, `"pong"` or `"bye"`.
//! The parser ([`parse_request`]) is total: any byte sequence maps to
//! either a [`Request`] or a typed [`ProtocolError`] whose
//! [`frame`](ProtocolError::frame) is itself a valid response line — a
//! malformed request always round-trips to a structured error frame, never
//! a panic or a dropped connection.
//!
//! A synthesize request:
//!
//! ```json
//! {"v":1,"type":"synthesize","id":"job-1",
//!  "circuit":{"bench":"RCA32"},
//!  "threshold":0.05,"algorithm":"single",
//!  "seed":1,"patterns":"fixed:1024","max_iterations":50,"progress":true}
//! ```
//!
//! The `circuit` object names either a registry benchmark (`"bench"`) or
//! carries inline BLIF text (`"blif"`); either form keys the daemon's
//! cross-job artifact cache by content hash (see
//! [`CircuitSource::cache_key`]).

use als_core::{PatternPolicy, Strategy};
use als_telemetry::Json;

/// Version of the wire protocol; bump on breaking frame changes.
/// v1: initial protocol — synthesize/cancel/stats/ping/shutdown requests,
/// accepted/progress/result/error/cancel_ok/stats/pong/bye responses.
pub const PROTOCOL_VERSION: u64 = 1;

/// Typed error categories carried by `"error"` frames; stable names on the
/// wire (see [`ErrorCode::name`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The frame was JSON but not a well-formed request (missing or
    /// mistyped fields, unknown `"type"`).
    BadRequest,
    /// The frame's `"v"` does not match [`PROTOCOL_VERSION`].
    UnsupportedVersion,
    /// The admission queue is full; retry later.
    QueueFull,
    /// The request line exceeded the daemon's frame-size cap.
    OversizedFrame,
    /// The circuit could not be resolved (BLIF parse error, unknown
    /// benchmark, or a network failing its consistency check).
    BadCircuit,
    /// The synthesis configuration was rejected (bad threshold, a pattern
    /// or iteration budget above the daemon's cap, …).
    BadConfig,
    /// The daemon is shutting down and admits no new jobs.
    ShuttingDown,
    /// A worker failed unexpectedly while running the job.
    Internal,
}

impl ErrorCode {
    /// The stable snake_case wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::OversizedFrame => "oversized_frame",
            ErrorCode::BadCircuit => "bad_circuit",
            ErrorCode::BadConfig => "bad_config",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Inverse of [`ErrorCode::name`].
    pub fn parse(name: &str) -> Option<ErrorCode> {
        Some(match name {
            "bad_json" => ErrorCode::BadJson,
            "bad_request" => ErrorCode::BadRequest,
            "unsupported_version" => ErrorCode::UnsupportedVersion,
            "queue_full" => ErrorCode::QueueFull,
            "oversized_frame" => ErrorCode::OversizedFrame,
            "bad_circuit" => ErrorCode::BadCircuit,
            "bad_config" => ErrorCode::BadConfig,
            "shutting_down" => ErrorCode::ShuttingDown,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A typed protocol-level failure, renderable as an `"error"` frame.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtocolError {
    /// The error category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// The request id the error answers, when the request carried one.
    pub id: Option<String>,
}

impl ProtocolError {
    /// A new error with no request id.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            code,
            message: message.into(),
            id: None,
        }
    }

    /// Attaches the request id the error answers.
    #[must_use]
    pub fn with_id(mut self, id: impl Into<String>) -> ProtocolError {
        self.id = Some(id.into());
        self
    }

    /// The error as a response frame (one JSON object; the caller adds the
    /// newline).
    pub fn frame(&self) -> Json {
        let mut obj = frame("error");
        obj.set("code", self.code.name())
            .set("message", self.message.as_str());
        if let Some(id) = &self.id {
            obj.set("id", id.as_str());
        }
        obj
    }

    /// Parses an `"error"` frame back into a [`ProtocolError`] — the
    /// client-side inverse of [`ProtocolError::frame`]. Returns `None` for
    /// frames of any other type or shape.
    pub fn parse_frame(json: &Json) -> Option<ProtocolError> {
        if json.get("type").and_then(Json::as_str) != Some("error") {
            return None;
        }
        let code = ErrorCode::parse(json.get("code").and_then(Json::as_str)?)?;
        let message = json.get("message").and_then(Json::as_str)?.to_string();
        let id = json
            .get("id")
            .and_then(Json::as_str)
            .map(ToString::to_string);
        Some(ProtocolError { code, message, id })
    }
}

/// Where a job's circuit comes from. Both forms hash to a stable cache key
/// over their content, so repeated requests for the same circuit share one
/// artifact-cache entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitSource {
    /// Inline BLIF text.
    Blif(String),
    /// A benchmark name from the `als-circuits` registry (see `als list`).
    Bench(String),
}

impl CircuitSource {
    /// The artifact-cache key: FNV-1a over a tagged rendering of the
    /// source, so BLIF text and a benchmark name can never collide with
    /// each other.
    pub fn cache_key(&self) -> u64 {
        match self {
            CircuitSource::Blif(text) => fnv1a(b"blif:", text.as_bytes()),
            CircuitSource::Bench(name) => fnv1a(b"bench:", name.as_bytes()),
        }
    }

    /// A short display label (benchmark name, or the BLIF model line).
    pub fn label(&self) -> &str {
        match self {
            CircuitSource::Blif(text) => text.lines().next().unwrap_or(""),
            CircuitSource::Bench(name) => name,
        }
    }
}

/// 64-bit FNV-1a over a tag and a payload.
fn fnv1a(tag: &[u8], payload: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in tag.iter().chain(payload) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A parsed `"synthesize"` request.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthesizeRequest {
    /// Client-chosen id echoed on every response frame of this job.
    pub id: String,
    /// The circuit to approximate.
    pub source: CircuitSource,
    /// The error-rate threshold.
    pub threshold: f64,
    /// Which selection algorithm to run.
    pub strategy: Strategy,
    /// Stimulus seed (daemon default when absent).
    pub seed: Option<u64>,
    /// Pattern policy (`fixed:N`, `adaptive:MIN..MAX`, or a bare count).
    pub patterns: Option<PatternPolicy>,
    /// Per-job iteration cap (clamped by the daemon's budget).
    pub max_iterations: Option<usize>,
    /// Stream per-iteration progress frames while the job runs.
    pub progress: bool,
}

/// One parsed request frame.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Request {
    /// Run a synthesis job.
    Synthesize(SynthesizeRequest),
    /// Trip the cancellation token of a job admitted on this connection.
    Cancel {
        /// The id the `"synthesize"` request carried.
        id: String,
    },
    /// Report daemon counters (jobs, queue depth, cache hits/misses).
    Stats,
    /// Liveness probe; answered with a `"pong"` frame.
    Ping,
    /// Stop the daemon after in-flight jobs finish.
    Shutdown,
}

/// The stable wire name of a strategy (`"single"`, `"multi"`, `"sasimi"` —
/// the same spelling `als approximate --algorithm` takes).
pub fn strategy_wire_name(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::Single => "single",
        Strategy::Sasimi => "sasimi",
        // `Strategy` is non_exhaustive; default any future variant to the
        // paper's main algorithm rather than failing a display path.
        _ => "multi",
    }
}

/// Parses a `--patterns`-style policy spec: `fixed:N`, `adaptive:MIN..MAX`,
/// or a bare count `N` (shorthand for `fixed:N`).
pub fn parse_pattern_spec(spec: &str) -> Result<PatternPolicy, String> {
    if let Some(n) = spec.strip_prefix("fixed:") {
        let n = n.parse().map_err(|e| format!("fixed count: {e}"))?;
        return Ok(PatternPolicy::Fixed(n));
    }
    if let Some(range) = spec.strip_prefix("adaptive:") {
        let (min, max) = range
            .split_once("..")
            .ok_or_else(|| String::from("adaptive policy wants MIN..MAX"))?;
        let min = min.parse().map_err(|e| format!("adaptive MIN: {e}"))?;
        let max = max.parse().map_err(|e| format!("adaptive MAX: {e}"))?;
        return Ok(PatternPolicy::Adaptive { min, max });
    }
    spec.parse()
        .map(PatternPolicy::Fixed)
        .map_err(|e| format!("pattern count: {e}"))
}

/// A fresh response frame skeleton: `{"v": 1, "type": <kind>}`.
pub fn frame(kind: &str) -> Json {
    let mut obj = Json::object();
    obj.set("v", PROTOCOL_VERSION).set("type", kind);
    obj
}

/// Parses one request line. Total: never panics, and every failure is a
/// typed [`ProtocolError`] (carrying the request's `"id"` when one was
/// readable) whose [`frame`](ProtocolError::frame) can be sent straight
/// back to the client.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let json = Json::parse(line)
        .map_err(|e| ProtocolError::new(ErrorCode::BadJson, format!("invalid JSON: {e}")))?;
    // Best-effort id extraction so even version/shape errors can name the
    // request they answer.
    let id = json
        .get("id")
        .and_then(Json::as_str)
        .map(ToString::to_string);
    let fail = |code: ErrorCode, message: String| {
        let e = ProtocolError::new(code, message);
        match &id {
            Some(id) => e.with_id(id.clone()),
            None => e,
        }
    };
    let version = json.get("v").and_then(Json::as_u64);
    if version != Some(PROTOCOL_VERSION) {
        return Err(fail(
            ErrorCode::UnsupportedVersion,
            match version {
                Some(v) => format!(
                    "protocol version {v} unsupported (this daemon speaks v{PROTOCOL_VERSION})"
                ),
                None => format!("missing \"v\" (this daemon speaks v{PROTOCOL_VERSION})"),
            },
        ));
    }
    let kind = json
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(ErrorCode::BadRequest, "missing \"type\"".to_string()))?;
    match kind {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "cancel" => match id {
            Some(id) => Ok(Request::Cancel { id }),
            None => Err(ProtocolError::new(
                ErrorCode::BadRequest,
                "cancel needs an \"id\"".to_string(),
            )),
        },
        "synthesize" => parse_synthesize(&json, id).map(Request::Synthesize),
        other => Err(fail(
            ErrorCode::BadRequest,
            format!("unknown request type `{other}`"),
        )),
    }
}

/// Parses the body of a `"synthesize"` frame (version and type already
/// checked).
fn parse_synthesize(json: &Json, id: Option<String>) -> Result<SynthesizeRequest, ProtocolError> {
    let fail = |message: String| {
        let e = ProtocolError::new(ErrorCode::BadRequest, message);
        match &id {
            Some(id) => e.with_id(id.clone()),
            None => e,
        }
    };
    let circuit = json
        .get("circuit")
        .ok_or_else(|| fail("synthesize needs a \"circuit\" object".to_string()))?;
    let source = match (
        circuit.get("blif").and_then(Json::as_str),
        circuit.get("bench").and_then(Json::as_str),
    ) {
        (Some(text), None) => CircuitSource::Blif(text.to_string()),
        (None, Some(name)) => CircuitSource::Bench(name.to_string()),
        (Some(_), Some(_)) => {
            return Err(fail(
                "\"circuit\" wants exactly one of \"blif\" or \"bench\", not both".to_string(),
            ))
        }
        (None, None) => {
            return Err(fail(
                "\"circuit\" wants a \"blif\" string or a \"bench\" name".to_string(),
            ))
        }
    };
    let threshold = json
        .get("threshold")
        .and_then(Json::as_f64)
        .ok_or_else(|| fail("synthesize needs a numeric \"threshold\"".to_string()))?;
    let strategy = match json.get("algorithm").and_then(Json::as_str) {
        None | Some("multi") => Strategy::Multi,
        Some("single") => Strategy::Single,
        Some("sasimi") => Strategy::Sasimi,
        Some(other) => {
            return Err(fail(format!(
                "unknown algorithm `{other}` (single, multi or sasimi)"
            )))
        }
    };
    let seed = match json.get("seed") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| fail("\"seed\" must be an unsigned integer".to_string()))?,
        ),
    };
    let patterns = match json.get("patterns").map(|v| (v, v.as_str())) {
        None => None,
        Some((_, Some(spec))) => Some(
            parse_pattern_spec(spec).map_err(|e| fail(format!("bad \"patterns\" spec: {e}")))?,
        ),
        Some((_, None)) => {
            return Err(fail(
                "\"patterns\" must be a spec string (fixed:N, adaptive:MIN..MAX, or N)".to_string(),
            ))
        }
    };
    let max_iterations = match json.get("max_iterations") {
        None => None,
        Some(v) => {
            let n = v.as_u64().ok_or_else(|| {
                fail("\"max_iterations\" must be an unsigned integer".to_string())
            })?;
            Some(usize::try_from(n).map_err(|e| fail(format!("\"max_iterations\": {e}")))?)
        }
    };
    let progress = match json.get("progress") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| fail("\"progress\" must be a boolean".to_string()))?,
    };
    let id = id.ok_or_else(|| {
        ProtocolError::new(
            ErrorCode::BadRequest,
            "synthesize needs a string \"id\"".to_string(),
        )
    })?;
    Ok(SynthesizeRequest {
        id,
        source,
        threshold,
        strategy,
        seed,
        patterns,
        max_iterations,
        progress,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_synthesize_request() {
        let line = r#"{"v":1,"type":"synthesize","id":"j1","circuit":{"bench":"RCA32"},"threshold":0.05,"algorithm":"single","seed":9,"patterns":"adaptive:64..1024","max_iterations":12,"progress":true}"#;
        let req = match parse_request(line).unwrap() {
            Request::Synthesize(req) => req,
            other => panic!("wrong request: {other:?}"),
        };
        assert_eq!(req.id, "j1");
        assert_eq!(req.source, CircuitSource::Bench("RCA32".to_string()));
        assert!((req.threshold - 0.05).abs() < 1e-12);
        assert_eq!(req.strategy, Strategy::Single);
        assert_eq!(req.seed, Some(9));
        assert_eq!(
            req.patterns,
            Some(PatternPolicy::Adaptive { min: 64, max: 1024 })
        );
        assert_eq!(req.max_iterations, Some(12));
        assert!(req.progress);
    }

    #[test]
    fn defaults_are_applied() {
        let line = r#"{"v":1,"type":"synthesize","id":"j","circuit":{"blif":".model m\n.end\n"},"threshold":0.1}"#;
        let req = match parse_request(line).unwrap() {
            Request::Synthesize(req) => req,
            other => panic!("wrong request: {other:?}"),
        };
        assert_eq!(req.strategy, Strategy::Multi);
        assert_eq!(req.seed, None);
        assert_eq!(req.patterns, None);
        assert!(!req.progress);
    }

    #[test]
    fn control_requests_parse() {
        assert_eq!(
            parse_request(r#"{"v":1,"type":"ping"}"#).unwrap(),
            Request::Ping
        );
        assert_eq!(
            parse_request(r#"{"v":1,"type":"stats"}"#).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(r#"{"v":1,"type":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request(r#"{"v":1,"type":"cancel","id":"j7"}"#).unwrap(),
            Request::Cancel {
                id: "j7".to_string()
            }
        );
    }

    #[test]
    fn garbage_is_bad_json() {
        let err = parse_request("not json at all").unwrap_err();
        assert_eq!(err.code, ErrorCode::BadJson);
    }

    #[test]
    fn wrong_version_is_typed_and_carries_the_id() {
        let err = parse_request(r#"{"v":99,"type":"ping","id":"x"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnsupportedVersion);
        assert_eq!(err.id.as_deref(), Some("x"));
        let err = parse_request(r#"{"type":"ping"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnsupportedVersion);
    }

    #[test]
    fn malformed_synthesize_fields_are_bad_request() {
        for line in [
            r#"{"v":1,"type":"synthesize","id":"j","threshold":0.1}"#,
            r#"{"v":1,"type":"synthesize","id":"j","circuit":{},"threshold":0.1}"#,
            r#"{"v":1,"type":"synthesize","id":"j","circuit":{"bench":"a","blif":"b"},"threshold":0.1}"#,
            r#"{"v":1,"type":"synthesize","id":"j","circuit":{"bench":"a"}}"#,
            r#"{"v":1,"type":"synthesize","id":"j","circuit":{"bench":"a"},"threshold":0.1,"algorithm":"magic"}"#,
            r#"{"v":1,"type":"synthesize","id":"j","circuit":{"bench":"a"},"threshold":0.1,"patterns":7}"#,
            r#"{"v":1,"type":"synthesize","id":"j","circuit":{"bench":"a"},"threshold":0.1,"seed":-1}"#,
            r#"{"v":1,"type":"synthesize","circuit":{"bench":"a"},"threshold":0.1}"#,
            r#"{"v":1,"type":"cancel"}"#,
            r#"{"v":1,"type":"warp"}"#,
            r#"{"v":1}"#,
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "line: {line}");
        }
    }

    #[test]
    fn error_frames_round_trip() {
        let errors = [
            ProtocolError::new(ErrorCode::QueueFull, "queue is full").with_id("j9"),
            ProtocolError::new(ErrorCode::BadJson, "invalid JSON: oops"),
            ProtocolError::new(ErrorCode::Internal, "worker panicked").with_id("x"),
        ];
        for err in errors {
            let rendered = err.frame().render();
            let parsed = Json::parse(&rendered).unwrap();
            assert_eq!(ProtocolError::parse_frame(&parsed), Some(err));
        }
    }

    #[test]
    fn cache_keys_separate_sources_and_are_content_stable() {
        let a = CircuitSource::Bench("RCA32".to_string());
        let b = CircuitSource::Blif("RCA32".to_string());
        assert_ne!(a.cache_key(), b.cache_key());
        assert_eq!(
            a.cache_key(),
            CircuitSource::Bench("RCA32".to_string()).cache_key()
        );
        assert_ne!(
            a.cache_key(),
            CircuitSource::Bench("CLA32".to_string()).cache_key()
        );
    }

    #[test]
    fn pattern_specs_parse_like_the_cli() {
        assert_eq!(
            parse_pattern_spec("fixed:512").unwrap(),
            PatternPolicy::Fixed(512)
        );
        assert_eq!(
            parse_pattern_spec("adaptive:64..512").unwrap(),
            PatternPolicy::Adaptive { min: 64, max: 512 }
        );
        assert_eq!(
            parse_pattern_spec("256").unwrap(),
            PatternPolicy::Fixed(256)
        );
        assert!(parse_pattern_spec("adaptive:64").is_err());
        assert!(parse_pattern_spec("several").is_err());
    }
}
