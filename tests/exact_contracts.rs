//! Exact (BDD/SAT) verification of the algorithms' contracts — no sampling
//! slack: the synthesized circuits' true error rates are computed over the
//! full input space.

use als::aig::{cec, CecResult};
use als::bdd::exact_error_rate;
use als::circuits::{carry_lookahead_adder, kogge_stone_adder, ripple_carry_adder};
use als::core::{multi_selection, single_selection, AlsConfig};
use als::sasimi::sasimi;

const NODE_LIMIT: usize = 1 << 22;

#[test]
fn zero_budget_runs_are_provably_equivalent() {
    // 2^24 input vectors — impossible to sweep, trivial to certify.
    let circuits = [
        ripple_carry_adder(12),
        carry_lookahead_adder(12),
        kogge_stone_adder(12),
    ];
    let config = AlsConfig::with_threshold(0.0);
    for golden in &circuits {
        for outcome in [
            single_selection(golden, &config),
            multi_selection(golden, &config),
            sasimi(golden, &config),
        ] {
            assert_eq!(
                cec(golden, &outcome.network),
                CecResult::Equivalent,
                "{}: zero budget must preserve the function",
                golden.name()
            );
            assert_eq!(
                exact_error_rate(golden, &outcome.network, NODE_LIMIT).unwrap(),
                0.0
            );
        }
    }
}

#[test]
fn exact_error_tracks_sampled_error() {
    let golden = kogge_stone_adder(10);
    for threshold in [0.01, 0.05] {
        let config = AlsConfig::with_threshold(threshold);
        let outcome = multi_selection(&golden, &config);
        let exact = exact_error_rate(&golden, &outcome.network, NODE_LIMIT).unwrap();
        // The synthesis-time estimate is a 10 048-vector sample of the exact
        // rate; the binomial standard error at these rates is < 0.004.
        assert!(
            (exact - outcome.measured_error_rate).abs() < 0.02,
            "exact {exact} vs sampled {} at {threshold}",
            outcome.measured_error_rate
        );
        assert!(
            exact <= threshold + 0.02,
            "exact rate {exact} blows the {threshold} budget"
        );
    }
}

#[test]
fn nonzero_error_implies_cec_counterexample() {
    let golden = kogge_stone_adder(8);
    let config = AlsConfig::with_threshold(0.05);
    let outcome = multi_selection(&golden, &config);
    let exact = exact_error_rate(&golden, &outcome.network, NODE_LIMIT).unwrap();
    match cec(&golden, &outcome.network) {
        CecResult::Equivalent => assert_eq!(exact, 0.0),
        CecResult::Counterexample(pis) => {
            assert!(exact > 0.0);
            assert_ne!(
                golden.eval(&pis),
                outcome.network.eval(&pis),
                "the witness must actually distinguish the circuits"
            );
        }
        CecResult::InterfaceMismatch => panic!("interfaces are identical"),
    }
}

#[test]
fn classical_optimizer_is_provably_function_preserving() {
    use als::core::classical::optimize_classical;
    let golden = carry_lookahead_adder(10);
    let mut optimized = golden.clone();
    let config = AlsConfig::default();
    optimize_classical(&mut optimized, &config);
    assert_eq!(cec(&golden, &optimized), CecResult::Equivalent);
}
