//! Tests pinning the reproduction to specific claims and examples of the
//! DAC'16 paper.

use als::core::knapsack::{solve, KnapsackItem, KnapsackState};
use als::core::{
    apparent_error_rate, estimated_real_error_rate, generate_ases, single_selection, AlsConfig,
    PatternPolicy,
};
use als::dontcare::{compute_dont_cares, DontCareConfig};
use als::logic::{Cover, Cube, Expr};
use als::network::Network;
use als::sim::{error_rate, local_pattern_probabilities, simulate, PatternSet};

fn cube(lits: &[(usize, bool)]) -> Cube {
    Cube::from_literals(lits).unwrap()
}

/// The paper's Fig. 1 network: n1 = i1·i2, n2 = n1·i3, f = i0·n2 + i0'·n1.
fn fig1() -> (Network, als::network::NodeId) {
    let mut net = Network::new("fig1");
    let i0 = net.add_pi("i0");
    let i1 = net.add_pi("i1");
    let i2 = net.add_pi("i2");
    let i3 = net.add_pi("i3");
    let n1 = net.add_node(
        "n1",
        vec![i1, i2],
        Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
    );
    let n2 = net.add_node(
        "n2",
        vec![n1, i3],
        Cover::from_cubes(2, [cube(&[(0, true), (1, true)])]),
    );
    let f = net.add_node(
        "f",
        vec![i0, n2, n1],
        Cover::from_cubes(
            3,
            [
                cube(&[(0, true), (1, true)]),
                cube(&[(0, false), (2, true)]),
            ],
        ),
    );
    net.add_po("f", f);
    (net, n2)
}

/// §3 / Fig. 1: replacing n2 by constant 0 has AEPIPs {0111, 1111} but only
/// REPIP {1111} — apparent rate 2/16, real rate 1/16.
#[test]
fn fig1_apparent_vs_real_error_rate() {
    let (net, n2) = fig1();
    let patterns = PatternSet::exhaustive(4).unwrap();
    let sim = simulate(&net, &patterns);
    let probs = local_pattern_probabilities(&net, &sim, n2);

    let node = net.node(n2);
    let ases = generate_ases(node.expr(), node.fanins().len(), 5);
    let const0 = ases
        .iter()
        .find(|a| a.expr == Expr::FALSE)
        .expect("const-0 ASE exists");

    // Apparent: n2 errs whenever n1·i3 = 1, i.e. i1=i2=i3=1 → 2 of 16 PI
    // patterns (i0 free).
    let apparent = apparent_error_rate(const0, &probs);
    assert!((apparent - 2.0 / 16.0).abs() < 1e-12, "apparent {apparent}");

    // True real rate: only 1111 propagates (i0 must be 1) → 1/16.
    let mut approx = net.clone();
    approx.replace_with_constant(n2, false);
    let real = error_rate(&net, &approx, &patterns);
    assert!((real - 1.0 / 16.0).abs() < 1e-12, "real {real}");

    // §3.3: the estimate is an upper bound on the real rate and at most the
    // apparent rate.
    let dc = compute_dont_cares(&net, n2, &DontCareConfig::default());
    let estimate = estimated_real_error_rate(const0, &probs, &dc);
    assert!(estimate >= real - 1e-12);
    assert!(estimate <= apparent + 1e-12);
}

/// §3.3: the real-error-rate estimate upper-bounds the true real error rate
/// for EVERY ASE of EVERY node (exhaustive patterns make both sides exact).
#[test]
fn estimate_is_a_sound_upper_bound_everywhere() {
    let (net, _) = fig1();
    let patterns = PatternSet::exhaustive(4).unwrap();
    let sim = simulate(&net, &patterns);
    for id in net.internal_ids().collect::<Vec<_>>() {
        let node = net.node(id);
        let probs = local_pattern_probabilities(&net, &sim, id);
        let dc = compute_dont_cares(&net, id, &DontCareConfig::default());
        for ase in generate_ases(node.expr(), node.fanins().len(), 5) {
            let estimate = estimated_real_error_rate(&ase, &probs, &dc);
            let mut approx = net.clone();
            match ase.expr.as_constant() {
                Some(v) => approx.replace_with_constant(id, v),
                None => approx.replace_expr(id, ase.expr.clone()),
            }
            let real = error_rate(&net, &approx, &patterns);
            assert!(
                estimate >= real - 1e-12,
                "node {id:?} ASE `{}`: estimate {estimate} < real {real}",
                ase.expr
            );
        }
    }
}

/// Theorem 1: the error rate after simultaneously applying several ASEs is
/// bounded by the sum of their apparent error rates.
#[test]
fn theorem_1_bound_holds_for_batches() {
    let (net, _) = fig1();
    let patterns = PatternSet::exhaustive(4).unwrap();
    let sim = simulate(&net, &patterns);
    let ids: Vec<_> = net.internal_ids().collect();

    // Every combination of one ASE per node (cartesian over 2 nodes to keep
    // the test fast but non-trivial: n1 and n2).
    let per_node: Vec<Vec<als::core::Ase>> = ids
        .iter()
        .map(|&id| {
            let node = net.node(id);
            generate_ases(node.expr(), node.fanins().len(), 5)
        })
        .collect();
    for (i, ase_i) in per_node[0].iter().enumerate() {
        for (j, ase_j) in per_node[1].iter().enumerate() {
            let probs_i = local_pattern_probabilities(&net, &simulate(&net, &patterns), ids[0]);
            let probs_j = local_pattern_probabilities(&net, &sim, ids[1]);
            let bound = apparent_error_rate(ase_i, &probs_i) + apparent_error_rate(ase_j, &probs_j);
            let mut approx = net.clone();
            for (id, ase) in [(ids[0], ase_i), (ids[1], ase_j)] {
                match ase.expr.as_constant() {
                    Some(v) => approx.replace_with_constant(id, v),
                    None => approx.replace_expr(id, ase.expr.clone()),
                }
            }
            let real = error_rate(&net, &approx, &patterns);
            assert!(
                real <= bound + 1e-12,
                "ASEs ({i},{j}): real {real} > bound {bound}"
            );
        }
    }
}

/// Tables 1–2: the worked knapsack example, end to end.
#[test]
fn paper_knapsack_example() {
    let items = vec![
        KnapsackItem {
            states: vec![
                KnapsackState {
                    weight: 2,
                    value: 1,
                },
                KnapsackState {
                    weight: 3,
                    value: 2,
                },
            ],
        },
        KnapsackItem {
            states: vec![
                KnapsackState {
                    weight: 4,
                    value: 2,
                },
                KnapsackState {
                    weight: 6,
                    value: 4,
                },
            ],
        },
        KnapsackItem {
            states: vec![KnapsackState {
                weight: 2,
                value: 1,
            }],
        },
    ];
    let solution = solve(&items, 9, true);
    assert_eq!(solution.total_value, 6);
    assert_eq!(solution.choices, vec![Some(1), Some(1), None]);
}

/// §3.1: the ASE census of `n = (a+b)(c+d)` — four single-literal removals,
/// and exactly the const-0/const-1 pair at full removal.
#[test]
fn paper_ase_example() {
    let expr = Expr::and(vec![
        Expr::or(vec![Expr::lit(0, true), Expr::lit(1, true)]),
        Expr::or(vec![Expr::lit(2, true), Expr::lit(3, true)]),
    ]);
    let ases = generate_ases(&expr, 4, 5);
    assert_eq!(
        ases.iter().filter(|a| a.literals_saved == 1).count(),
        4,
        "four ways to remove one literal"
    );
    let full: Vec<_> = ases.iter().filter(|a| a.literals_saved == 4).collect();
    assert_eq!(full.len(), 2, "const-0 and const-1");
}

/// §4: the algorithm's loop structure — the error budget is consumed
/// monotonically and the margin never goes negative.
#[test]
fn error_budget_consumed_monotonically() {
    let golden = als::circuits::wallace_tree_multiplier(3);
    let mut config = AlsConfig::with_threshold(0.10);
    config.patterns = PatternPolicy::Fixed(4096);
    let outcome = single_selection(&golden, &config);
    let mut last = 0.0;
    for it in &outcome.iterations {
        assert!(it.error_rate_after + 1e-12 >= last, "error rate decreased");
        assert!(it.error_rate_after <= 0.10 + 1e-12);
        last = it.error_rate_after;
    }
}
