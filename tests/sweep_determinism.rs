//! Property: a design-space sweep is a pure function of `(circuit, grid,
//! base config)` — the sweep worker count, like the engine thread count, is
//! a pure *speed* knob. One worker and many workers must produce
//! byte-identical frontier records (fingerprints exclude wall-clock noise by
//! construction).

use als::circuits::adders::ripple_carry_adder;
use als::circuits::alu::adder_comparator;
use als::core::sweep::{run_sweep, SweepGrid, SweepRecord};
use als::{AlsConfig, DelayWeight, PatternPolicy, Strategy};

fn small_grid(workers: usize, delay_weight: DelayWeight) -> SweepGrid {
    SweepGrid {
        thresholds: vec![0.005, 0.05],
        strategies: vec![Strategy::Single, Strategy::Multi, Strategy::Sasimi],
        patterns: vec![PatternPolicy::Adaptive { min: 64, max: 256 }],
        delay_weight,
        sweep_workers: workers,
        quick: true,
    }
}

fn base_config() -> AlsConfig {
    AlsConfig::builder()
        .seed(29)
        .build()
        .expect("test config is valid")
}

#[test]
fn sweep_workers_never_change_the_record() {
    for (name, net) in [
        ("RCA4", ripple_carry_adder(4)),
        ("CMP4", adder_comparator(4)),
    ] {
        let serial = run_sweep(name, &net, &small_grid(1, DelayWeight::Off), &base_config())
            .expect("sweep runs");
        let parallel = run_sweep(name, &net, &small_grid(4, DelayWeight::Off), &base_config())
            .expect("sweep runs");
        assert_eq!(
            serial.fingerprint(),
            parallel.fingerprint(),
            "{name}: sweep workers changed the record"
        );
        assert_eq!(serial.points.len(), 6);
        assert!(serial.frontier().count() >= 1);
    }
}

#[test]
fn delay_weighted_sweeps_are_deterministic_too() {
    let net = ripple_carry_adder(4);
    let grid = |w| small_grid(w, DelayWeight::Scaled(1.0));
    let serial = run_sweep("RCA4", &net, &grid(1), &base_config()).expect("sweep runs");
    let parallel = run_sweep("RCA4", &net, &grid(3), &base_config()).expect("sweep runs");
    assert_eq!(
        serial.fingerprint(),
        parallel.fingerprint(),
        "delay-weighted sweep diverged across worker counts"
    );
    // Every point still satisfies its threshold under delay-aware scoring.
    for p in &serial.points {
        assert!(p.error_rate <= p.threshold + 1e-12, "{p:?}");
    }
}

#[test]
fn rendered_records_round_trip_with_identical_fingerprints() {
    let net = ripple_carry_adder(3);
    let record = run_sweep(
        "RCA3",
        &net,
        &small_grid(2, DelayWeight::Off),
        &base_config(),
    )
    .expect("sweep runs");
    let parsed = SweepRecord::parse(&record.render()).expect("rendered record parses");
    assert_eq!(parsed.fingerprint(), record.fingerprint());
    assert_eq!(parsed.points, record.points);
}
