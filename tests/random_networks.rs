//! Property-based integration tests: the algorithms' contracts must hold on
//! arbitrary small random networks, with the true error rate measured
//! exhaustively.

use als::core::{multi_selection, single_selection, AlsConfig, PatternPolicy};
use als::logic::{Cover, Cube};
use als::network::{Network, NodeId};
use als::sasimi::sasimi;
use als::sim::{error_rate, PatternSet};
use proptest::prelude::*;

const NUM_PIS: usize = 5;

/// Builds a random layered network from a compact recipe.
fn build_network(recipe: &[(u8, u8, u8)]) -> Network {
    let mut net = Network::new("random");
    let mut signals: Vec<NodeId> = (0..NUM_PIS).map(|i| net.add_pi(format!("x{i}"))).collect();
    for (idx, &(sel_a, sel_b, kind)) in recipe.iter().enumerate() {
        let a = signals[sel_a as usize % signals.len()];
        let mut b = signals[sel_b as usize % signals.len()];
        if a == b {
            b = signals[(sel_b as usize + 1) % signals.len()];
        }
        if a == b {
            continue;
        }
        let cover = match kind % 4 {
            0 => Cover::from_cubes(2, [Cube::from_literals(&[(0, true), (1, true)]).unwrap()]),
            1 => Cover::from_cubes(
                2,
                [
                    Cube::from_literals(&[(0, true)]).unwrap(),
                    Cube::from_literals(&[(1, true)]).unwrap(),
                ],
            ),
            2 => Cover::from_cubes(
                2,
                [
                    Cube::from_literals(&[(0, true), (1, false)]).unwrap(),
                    Cube::from_literals(&[(0, false), (1, true)]).unwrap(),
                ],
            ),
            _ => Cover::from_cubes(2, [Cube::from_literals(&[(0, false), (1, false)]).unwrap()]),
        };
        let id = net.add_node(format!("g{idx}"), vec![a, b], cover);
        signals.push(id);
    }
    // Last few signals become outputs.
    let n_po = 2.min(signals.len() - NUM_PIS).max(1);
    for (i, &s) in signals.iter().rev().take(n_po).enumerate() {
        net.add_po(format!("y{i}"), s);
    }
    net
}

fn arb_recipe() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 3..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn single_selection_contract(recipe in arb_recipe(), t_pct in 0u8..15) {
        let golden = build_network(&recipe);
        prop_assume!(golden.num_internal() > 0);
        let threshold = f64::from(t_pct) / 100.0;
        let mut config = AlsConfig::with_threshold(threshold);
        config.patterns = PatternPolicy::Fixed(4096); // ≈128 samples of each of the 32 input points
        let outcome = single_selection(&golden, &config);
        outcome.network.check().unwrap();
        prop_assert!(outcome.final_literals <= outcome.initial_literals);
        let patterns = PatternSet::exhaustive(NUM_PIS).unwrap();
        let true_er = error_rate(&golden, &outcome.network, &patterns);
        // 4096 random draws over 32 input points: the sampled rate is
        // near-exact; the slack covers multinomial weighting noise.
        prop_assert!(true_er <= threshold + 0.08, "true {true_er} budget {threshold}");
    }

    #[test]
    fn multi_selection_contract(recipe in arb_recipe(), t_pct in 0u8..15) {
        let golden = build_network(&recipe);
        prop_assume!(golden.num_internal() > 0);
        let threshold = f64::from(t_pct) / 100.0;
        let mut config = AlsConfig::with_threshold(threshold);
        config.patterns = PatternPolicy::Fixed(4096);
        let outcome = multi_selection(&golden, &config);
        outcome.network.check().unwrap();
        prop_assert!(outcome.final_literals <= outcome.initial_literals);
        let patterns = PatternSet::exhaustive(NUM_PIS).unwrap();
        let true_er = error_rate(&golden, &outcome.network, &patterns);
        prop_assert!(true_er <= threshold + 0.08, "true {true_er} budget {threshold}");
    }

    #[test]
    fn sasimi_contract(recipe in arb_recipe(), t_pct in 0u8..15) {
        let golden = build_network(&recipe);
        prop_assume!(golden.num_internal() > 0);
        let threshold = f64::from(t_pct) / 100.0;
        let mut config = AlsConfig::with_threshold(threshold);
        config.patterns = PatternPolicy::Fixed(4096);
        let outcome = sasimi(&golden, &config);
        outcome.network.check().unwrap();
        prop_assert!(outcome.final_literals <= outcome.initial_literals);
        let patterns = PatternSet::exhaustive(NUM_PIS).unwrap();
        let true_er = error_rate(&golden, &outcome.network, &patterns);
        prop_assert!(true_er <= threshold + 0.08, "true {true_er} budget {threshold}");
    }

    #[test]
    fn zero_budget_preserves_function(recipe in arb_recipe()) {
        let golden = build_network(&recipe);
        prop_assume!(golden.num_internal() > 0);
        let mut config = AlsConfig::with_threshold(0.0);
        config.patterns = PatternPolicy::Fixed(4096);
        let patterns = PatternSet::exhaustive(NUM_PIS).unwrap();
        for outcome in [
            single_selection(&golden, &config),
            multi_selection(&golden, &config),
        ] {
            // At a zero budget the output must be functionally identical —
            // redundancy removal and exact ASEs only.
            prop_assert_eq!(error_rate(&golden, &outcome.network, &patterns), 0.0);
        }
    }
}
