//! Usage-conformance audit for the `als` binary.
//!
//! The help text is a contract: every subcommand it advertises must be
//! dispatched (not fall through to "unknown command"), every advertised
//! subcommand invoked with missing/bad arguments must exit 2 with a usage
//! error, and the advertised set must match the dispatcher's set exactly —
//! so the help text can never silently drift from `main`'s match again.

use std::process::{Command, Output};

/// Every subcommand `main` dispatches. Keep in sync with the dispatcher —
/// the first test fails if the help text and this list ever disagree.
const DISPATCHED: &[&str] = &[
    "stats",
    "gen",
    "approximate",
    "sweep",
    "verify",
    "check",
    "bound",
    "map",
    "verilog",
    "cec",
    "simplify",
    "serve",
    "list",
];

fn als(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_als"))
        .args(args)
        .output()
        .expect("run als")
}

/// The subcommand names the `--help` text advertises, in order.
fn advertised_subcommands() -> Vec<String> {
    let out = als(&["--help"]);
    assert!(out.status.success(), "--help must exit 0");
    let help = String::from_utf8_lossy(&out.stdout).into_owned();
    help.lines()
        .filter_map(|line| line.strip_prefix("  als "))
        .filter_map(|rest| rest.split_whitespace().next())
        .map(ToString::to_string)
        .collect()
}

#[test]
fn help_advertises_exactly_the_dispatched_subcommands() {
    let advertised = advertised_subcommands();
    assert_eq!(
        advertised, DISPATCHED,
        "help text and dispatcher disagree on the subcommand set"
    );
}

#[test]
fn every_advertised_subcommand_is_dispatched() {
    for cmd in advertised_subcommands() {
        // A dispatched subcommand may fail for lack of arguments, but it
        // must never fall through to the unknown-command arm.
        let out = als(&[&cmd]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            !stderr.contains("unknown command"),
            "`als {cmd}` is advertised but not dispatched: {stderr}"
        );
    }
}

#[test]
fn bad_arguments_exit_2_for_every_argument_taking_subcommand() {
    for cmd in DISPATCHED {
        if *cmd == "list" {
            continue; // takes no arguments; exercised below
        }
        // Invoked bare, every argument-taking subcommand is a usage error:
        // exit code 2 and a diagnostic on stderr.
        let out = als(&[cmd]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "`als {cmd}` without arguments should exit 2, got {:?}",
            out.status.code()
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.starts_with("error:"),
            "`als {cmd}` should print an error diagnostic, got: {stderr}"
        );
    }
}

#[test]
fn unknown_commands_exit_2_and_echo_usage() {
    let out = als(&["transmogrify"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
    assert!(
        stderr.contains("USAGE"),
        "usage text missing from: {stderr}"
    );
}

#[test]
fn list_and_help_exit_0() {
    assert!(als(&["list"]).status.success());
    assert!(als(&["--help"]).status.success());
    assert!(als(&["help"]).status.success());
    assert!(als(&[]).status.success());
}

#[test]
fn serve_rejects_bad_flags_with_usage_errors() {
    for args in [
        vec!["serve"], // missing --listen
        vec!["serve", "--listen", "127.0.0.1:0", "--workers", "many"],
        vec!["serve", "--listen", "127.0.0.1:0", "--queue", "-3"],
    ] {
        let out = als(&args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "`als {}` should exit 2",
            args.join(" ")
        );
    }
}
