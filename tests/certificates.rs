//! Acceptance: the Theorem-1 certificate audit over the paper's Table-4
//! threshold sweep.
//!
//! For KSA32 and RCA32 at every Table-4 threshold, each algorithm's run is
//! logged to an in-memory JSONL sink, parsed back into a certificate
//! chain, and audited against the golden and final networks: the measured
//! (re-derived) error rate must satisfy the iteration-by-iteration
//! Theorem-1 chain and never exceed the claimed bound or the budget.
//!
//! Iterations are capped and the pattern count reduced so the sweep stays
//! affordable in debug builds — the audit's soundness does not depend on
//! running the optimization to convergence.

use als::check::{audit_certificates, AuditConfig, CertificateLog};
use als::circuits::adders::{kogge_stone_adder, ripple_carry_adder};
use als::network::Network;
use als::telemetry::{JsonlSink, Telemetry};
use als::{approximate, AlsConfig, PatternPolicy, Strategy};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// The paper's Table-4 error-rate thresholds.
const PAPER_THRESHOLDS: [f64; 7] = [0.001, 0.003, 0.005, 0.008, 0.01, 0.03, 0.05];

const NUM_PATTERNS: usize = 256;
const MAX_ITERATIONS: usize = 40;

/// A `Write` handle into a shared buffer, so the test can read back what
/// the sink (which owns its writer) wrote.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);
impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn audited_sweep(strategy: Strategy) {
    type Build = fn() -> Network;
    let circuits: [(&str, Build); 2] = [
        ("KSA32", || kogge_stone_adder(32)),
        ("RCA32", || ripple_carry_adder(32)),
    ];
    for (name, build) in circuits {
        let golden = build();
        for threshold in PAPER_THRESHOLDS {
            let buf = SharedBuf::default();
            let config = AlsConfig::builder()
                .threshold(threshold)
                .patterns(PatternPolicy::Fixed(NUM_PATTERNS))
                .max_iterations(MAX_ITERATIONS)
                .seed(11)
                .telemetry(Telemetry::from(Arc::new(JsonlSink::new(buf.clone()))))
                .build()
                .expect("sweep config is valid");
            let outcome = approximate(&golden, strategy, &config).expect("run succeeds");
            let text = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf8 jsonl");

            let log = CertificateLog::from_jsonl(&text)
                .unwrap_or_else(|e| panic!("{name}@{threshold}: bad log: {e}"));
            assert_eq!(log.threshold, threshold);
            assert_eq!(log.num_patterns, NUM_PATTERNS);
            assert_eq!(
                log.iterations.len(),
                outcome.iterations.len(),
                "{name}@{threshold}: log and outcome disagree on iterations"
            );

            // The audit re-derives the real error rate from the logged
            // seed and checks real ≤ claimed ≤ budget plus the chain.
            let report = audit_certificates(
                &log,
                Some(&golden),
                Some(&outcome.network),
                &AuditConfig::default(),
            );
            assert!(
                report.is_clean(),
                "{name}@{threshold} ({strategy:?}): audit found errors:\n{report}"
            );

            // Redundant with the audit, but spelled out: the claimed final
            // rate respects the budget, and the Theorem-1 chained bound
            // dominates the measured increase over the initial rate.
            let claimed = log.final_error.expect("run_end present");
            assert!(
                claimed <= threshold + 1e-12,
                "{name}@{threshold}: claimed {claimed} over budget"
            );
            let initial = log.initial_error.expect("initial measurement present");
            let apparent_sum: f64 = log.all_certificates().map(|c| c.apparent).sum();
            assert!(
                claimed <= initial + apparent_sum + 1e-12,
                "{name}@{threshold}: claimed {claimed} exceeds Theorem-1 bound {initial} + {apparent_sum}"
            );
        }
    }
}

#[test]
fn single_selection_certificates_audit_clean_at_every_table4_threshold() {
    audited_sweep(Strategy::Single);
}

#[test]
fn multi_selection_certificates_audit_clean_at_every_table4_threshold() {
    audited_sweep(Strategy::Multi);
}

#[test]
fn sasimi_certificates_audit_clean_at_every_table4_threshold() {
    audited_sweep(Strategy::Sasimi);
}
