//! End-to-end integration tests spanning every crate: generate → preprocess
//! → approximate → verify → map.

use als::circuits::{all_benchmarks, ripple_carry_adder, wallace_tree_multiplier};
use als::core::{multi_selection, single_selection, AlsConfig, PatternPolicy};
use als::mapper::{map_network, Library};
use als::network::blif;
use als::sasimi::sasimi;
use als::sim::{error_rate, PatternSet};

fn quick_config(threshold: f64) -> AlsConfig {
    let mut config = AlsConfig::with_threshold(threshold);
    config.patterns = PatternPolicy::Fixed(2048);
    config
}

#[test]
fn all_algorithms_respect_threshold_exhaustively() {
    // Small circuit with few PIs → the true error rate is exactly
    // measurable, independent of the synthesis-time sampling.
    let golden = wallace_tree_multiplier(3); // 6 PIs, 64 patterns
    let patterns = PatternSet::exhaustive(6).unwrap();
    for threshold in [0.0, 0.02, 0.05, 0.10] {
        let config = quick_config(threshold);
        for (name, outcome) in [
            ("single", single_selection(&golden, &config)),
            ("multi", multi_selection(&golden, &config)),
            ("sasimi", sasimi(&golden, &config)),
        ] {
            outcome.network.check().unwrap();
            let true_er = error_rate(&golden, &outcome.network, &patterns);
            // Sampling noise at 2048 patterns is ~1% at these rates.
            assert!(
                true_er <= threshold + 0.03,
                "{name}@{threshold}: true error rate {true_er}"
            );
        }
    }
}

#[test]
fn approximation_then_mapping_preserves_claimed_function() {
    let golden = ripple_carry_adder(8);
    let config = quick_config(0.05);
    let outcome = multi_selection(&golden, &config);
    let lib = Library::mcnc_like();
    let mapped = map_network(&outcome.network, &lib);
    // The mapped netlist must equal the approximate network exactly.
    let mut state = 7u64;
    for _ in 0..200 {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        let pis: Vec<bool> = (0..16).map(|i| state >> i & 1 == 1).collect();
        assert_eq!(outcome.network.eval(&pis), mapped.eval(&pis));
    }
}

#[test]
fn blif_roundtrip_preserves_approximate_network() {
    let golden = ripple_carry_adder(4);
    let outcome = single_selection(&golden, &quick_config(0.08));
    let text = blif::write(&outcome.network);
    let reparsed = blif::parse(&text).unwrap();
    let patterns = PatternSet::exhaustive(8).unwrap();
    assert_eq!(
        error_rate(&outcome.network, &reparsed, &patterns),
        0.0,
        "write→parse must be exact"
    );
}

#[test]
fn every_benchmark_survives_a_quick_multi_selection() {
    for bench in all_benchmarks() {
        let golden = (bench.build)();
        let mut config = quick_config(0.03);
        config.max_iterations = 10; // keep CI time bounded
        let outcome = multi_selection(&golden, &config);
        outcome.network.check().unwrap();
        assert!(
            outcome.measured_error_rate <= 0.03 + 1e-12,
            "{}: {}",
            bench.name,
            outcome.measured_error_rate
        );
        assert!(
            outcome.final_literals <= outcome.initial_literals,
            "{} grew",
            bench.name
        );
    }
}

#[test]
fn algorithm_ordering_on_area_matches_paper_trend() {
    // The single-selection algorithm should never be (meaningfully) worse
    // than multi-selection on the same circuit, and both track SASIMI.
    let golden = (all_benchmarks()[1].build)(); // c1908-class: most headroom
    let config = quick_config(0.05);
    let single = single_selection(&golden, &config);
    let multi = multi_selection(&golden, &config);
    assert!(
        single.final_literals <= multi.final_literals + multi.final_literals / 10,
        "single {} vs multi {}",
        single.final_literals,
        multi.final_literals
    );
    // And multi takes no more iterations.
    assert!(multi.iterations.len() <= single.iterations.len().max(1));
}

#[test]
fn deterministic_per_seed() {
    let golden = ripple_carry_adder(6);
    let config = quick_config(0.05);
    let a = multi_selection(&golden, &config);
    let b = multi_selection(&golden, &config);
    assert_eq!(a.final_literals, b.final_literals);
    assert_eq!(a.measured_error_rate, b.measured_error_rate);
    let mut c2 = config;
    c2.seed = 999;
    // A different seed may change the sample, but never break the contract.
    let c = multi_selection(&golden, &c2);
    assert!(c.measured_error_rate <= 0.05 + 1e-12);
}
