//! Property: static candidate pruning is a pure *speed* knob.
//!
//! The engine discards a candidate without pricing it only when the
//! abstract interpreter proves its apparent error exceeds the remaining
//! budget — a candidate the exact pricing would also reject. So
//! [`als::approximate`] with [`prune`](als::AlsConfig::prune) on or off
//! must produce byte-identical outcomes (BLIF text, iteration log, error
//! rate), exactly like the thread-count and cache knobs in the
//! `determinism` suite.
//!
//! The suite also guards against vacuity: a sweep where the pruner never
//! fires would make the transparency check meaningless, so one test pins a
//! configuration (a 32-bit adder at the paper's tightest threshold) where
//! static bounds provably discard candidates and simulations are avoided.

use als::circuits::adders::ripple_carry_adder;
use als::circuits::alu::adder_comparator;
use als::circuits::misc::priority_encoder;
use als::network::{blif, Network};
use als::{approximate, AlsConfig, AlsOutcome, PatternPolicy, PrunePolicy, Strategy};
use als_bench::PAPER_THRESHOLDS;

/// Everything observable about an outcome except engine metrics and
/// wall-clock time, as one comparable string.
fn fingerprint(out: &AlsOutcome) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    s.push_str(&blif::write(&out.network));
    let _ = writeln!(
        s,
        "\nliterals {} -> {}\nerror_rate {:.17e}",
        out.initial_literals, out.final_literals, out.measured_error_rate
    );
    for it in &out.iterations {
        let _ = writeln!(
            s,
            "iter {} lits {} er {:.17e}",
            it.iteration, it.literals_after, it.error_rate_after
        );
        for ch in &it.changes {
            let _ = writeln!(
                s,
                "  {} := {} (-{} lits, est {:.17e} app {:.17e})",
                ch.node_name, ch.ase, ch.literals_saved, ch.error_estimate, ch.apparent
            );
        }
    }
    s
}

fn config(threshold: f64, prune: bool) -> AlsConfig {
    AlsConfig::builder()
        .threshold(threshold)
        .patterns(PatternPolicy::Fixed(256))
        .seed(41)
        .pruning(if prune {
            PrunePolicy::Static
        } else {
            PrunePolicy::Off
        })
        .build()
        .expect("test config is valid")
}

/// The three circuits the transparency sweep covers: an adder (deep
/// reconvergent carry chain), an ALU slice, and a control-style encoder.
fn circuits() -> [Network; 3] {
    [
        ripple_carry_adder(4),
        adder_comparator(4),
        priority_encoder(4),
    ]
}

/// The headline property: every circuit × every Table-4 threshold × both
/// paper algorithms, pruning on vs. off, byte-identical outcomes.
#[test]
fn pruning_never_changes_the_outcome_across_table4_thresholds() {
    let mut pruned_total = 0u64;
    for net in circuits() {
        for &threshold in &PAPER_THRESHOLDS {
            for strategy in [Strategy::Single, Strategy::Multi] {
                let on = approximate(&net, strategy, &config(threshold, true)).unwrap();
                let off = approximate(&net, strategy, &config(threshold, false)).unwrap();
                assert_eq!(
                    fingerprint(&on),
                    fingerprint(&off),
                    "{} @ {threshold} {strategy:?}: pruning changed the outcome",
                    net.name()
                );
                assert_eq!(
                    off.metrics.candidates_pruned, 0,
                    "prune=false must not prune"
                );
                pruned_total += on.metrics.candidates_pruned;
            }
        }
    }
    // Non-vacuity: the sweep exercised the pruner, not just its bypass.
    assert!(
        pruned_total > 0,
        "no candidate was ever statically pruned — the transparency sweep is vacuous"
    );
}

/// SASIMI ignores the knob entirely (its substitution pricing has no
/// static pre-filter); the outcome must still be identical.
#[test]
fn sasimi_is_unaffected_by_the_prune_knob() {
    let net = ripple_carry_adder(4);
    let on = approximate(&net, Strategy::Sasimi, &config(0.01, true)).unwrap();
    let off = approximate(&net, Strategy::Sasimi, &config(0.01, false)).unwrap();
    assert_eq!(fingerprint(&on), fingerprint(&off));
    assert_eq!(on.metrics.candidates_pruned, 0);
    assert_eq!(on.metrics.nodes_skipped, 0);
}

/// The simulations-avoided measure is live where it matters: the paper's
/// tightest threshold on a 32-bit adder leaves a budget so small that the
/// static lower bounds discard whole nodes' candidate lists before any
/// local-pattern gather runs.
#[test]
fn tightest_threshold_on_a_wide_adder_skips_simulations() {
    let net = ripple_carry_adder(32);
    let config = AlsConfig::builder()
        .threshold(PAPER_THRESHOLDS[0])
        .patterns(PatternPolicy::Fixed(2048))
        .seed(41)
        .pruning(PrunePolicy::Static)
        .build()
        .expect("test config is valid");
    let out = approximate(&net, Strategy::Multi, &config).unwrap();
    assert!(
        out.metrics.candidates_pruned > 0,
        "expected static pruning on RCA32 at threshold {}",
        PAPER_THRESHOLDS[0]
    );
    assert!(
        out.metrics.nodes_skipped > 0,
        "expected whole-node gather skips on RCA32 at threshold {}",
        PAPER_THRESHOLDS[0]
    );
    assert!(out.measured_error_rate <= PAPER_THRESHOLDS[0] + 1e-12);
}
