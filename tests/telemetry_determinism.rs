//! Property: telemetry is *purely observational*. Attaching any sink — the
//! metrics collector, a JSONL event log, or a user-defined one — must leave
//! the outcome byte-identical to an untelemetered run, at one worker and at
//! many.

use als::circuits::adders::ripple_carry_adder;
use als::circuits::alu::adder_comparator;
use als::circuits::misc::priority_encoder;
use als::network::{blif, Network};
use als::telemetry::{Event, JsonlSink, MetricsCollector, Telemetry, TelemetrySink};
use als::{approximate, AlsConfig, AlsOutcome, PatternPolicy, Strategy};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Everything observable about an outcome, as one comparable string.
fn fingerprint(out: &AlsOutcome) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    s.push_str(&blif::write(&out.network));
    let _ = writeln!(
        s,
        "\nliterals {} -> {}\nerror_rate {:.17e}",
        out.initial_literals, out.final_literals, out.measured_error_rate
    );
    for it in &out.iterations {
        let _ = writeln!(
            s,
            "iter {} lits {} er {:.17e}",
            it.iteration, it.literals_after, it.error_rate_after
        );
        for ch in &it.changes {
            let _ = writeln!(
                s,
                "  {} := {} (-{} lits, est {:.17e})",
                ch.node_name, ch.ase, ch.literals_saved, ch.error_estimate
            );
        }
    }
    s
}

fn circuit(index: usize) -> Network {
    match index {
        0 => ripple_carry_adder(4),
        1 => adder_comparator(4),
        _ => priority_encoder(4),
    }
}

/// A user-defined sink: counts events, to prove the runs under test really
/// were observed (the property would be vacuous otherwise).
#[derive(Default)]
struct CountingSink {
    events: AtomicU64,
}

impl TelemetrySink for CountingSink {
    fn record(&self, _event: &Event) {
        self.events.fetch_add(1, Ordering::Relaxed);
    }
}

fn config(seed: u64, threads: usize, telemetry: Telemetry) -> AlsConfig {
    AlsConfig::builder()
        .threshold(0.05)
        .patterns(PatternPolicy::Fixed(512))
        .seed(seed)
        .threads(threads)
        .telemetry(telemetry)
        .build()
        .expect("test config is valid")
}

/// Every sink arrangement to sweep: disabled, metrics collector, JSONL log
/// (into a throwaway writer), custom counter, and all three stacked.
fn sink_arrangements() -> Vec<(&'static str, Telemetry)> {
    vec![
        ("disabled", Telemetry::disabled()),
        (
            "metrics",
            Telemetry::from(Arc::new(MetricsCollector::new())),
        ),
        (
            "jsonl",
            Telemetry::from(Arc::new(JsonlSink::new(std::io::sink()))),
        ),
        (
            "counting",
            Telemetry::from(Arc::new(CountingSink::default())),
        ),
        (
            "stacked",
            Telemetry::from(Arc::new(MetricsCollector::new()))
                .with(Arc::new(JsonlSink::new(std::io::sink())))
                .with(Arc::new(CountingSink::default())),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sinks_never_change_the_outcome(
        seed in 1u64..1000,
        circuit_index in 0usize..3,
        strategy_index in 0usize..2,
    ) {
        let net = circuit(circuit_index);
        let strategy = [Strategy::Single, Strategy::Multi][strategy_index];
        let want = fingerprint(
            &approximate(&net, strategy, &config(seed, 1, Telemetry::disabled())).unwrap(),
        );

        for (label, telemetry) in sink_arrangements() {
            for threads in [1usize, 4] {
                let out =
                    approximate(&net, strategy, &config(seed, threads, telemetry.clone())).unwrap();
                prop_assert_eq!(
                    &want,
                    &fingerprint(&out),
                    "sink `{}` with threads={} changed the outcome (circuit {}, {:?}, seed {})",
                    label, threads, circuit_index, strategy, seed
                );
            }
        }
    }
}

/// Pinned non-property variant, plus the vacuity check: the sinks really do
/// receive events during the compared runs.
#[test]
fn stacked_sinks_observe_without_perturbing() {
    let net = ripple_carry_adder(4);
    let want = fingerprint(
        &approximate(&net, Strategy::Multi, &config(7, 1, Telemetry::disabled())).unwrap(),
    );

    let counter = Arc::new(CountingSink::default());
    let collector = Arc::new(MetricsCollector::new());
    let telemetry = Telemetry::from(collector.clone()).with(counter.clone());
    for threads in [1usize, 4] {
        let out = approximate(
            &net,
            Strategy::Multi,
            &config(7, threads, telemetry.clone()),
        )
        .unwrap();
        assert_eq!(want, fingerprint(&out), "threads={threads}");
    }
    assert!(
        counter.events.load(Ordering::Relaxed) > 0,
        "the custom sink never saw an event — the property above is vacuous"
    );
    assert!(collector.report().measurements > 0);
}
