//! Property: [`als::approximate`] is a pure function of `(network, strategy,
//! config-minus-engine-knobs)`. The candidate-evaluation engine's thread
//! count and cache are pure *speed* knobs — one worker, many workers, and a
//! disabled cache must produce byte-identical outcomes for the same seed.
//!
//! Outcomes are compared down to the BLIF text of the result network, the
//! full iteration log, and the measured error rate.

use als::circuits::adders::ripple_carry_adder;
use als::circuits::alu::adder_comparator;
use als::circuits::misc::priority_encoder;
use als::network::{blif, Network};
use als::{approximate, AlsConfig, AlsOutcome, DelayWeight, PatternPolicy, ResimMode, Strategy};
use als_bench::PAPER_THRESHOLDS;
use als_dontcare::{DontCareConfig, DontCareMethod, SolverReuse};
use proptest::prelude::*;

/// Everything observable about an outcome, as one comparable string.
fn fingerprint(out: &AlsOutcome) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    s.push_str(&blif::write(&out.network));
    let _ = writeln!(
        s,
        "\nliterals {} -> {}\nerror_rate {:.17e}",
        out.initial_literals, out.final_literals, out.measured_error_rate
    );
    for it in &out.iterations {
        let _ = writeln!(
            s,
            "iter {} lits {} er {:.17e}",
            it.iteration, it.literals_after, it.error_rate_after
        );
        for ch in &it.changes {
            let _ = writeln!(
                s,
                "  {} := {} (-{} lits, est {:.17e})",
                ch.node_name, ch.ase, ch.literals_saved, ch.error_estimate
            );
        }
    }
    s
}

/// The three generator circuits the property sweeps.
fn circuit(index: usize) -> Network {
    match index {
        0 => ripple_carry_adder(4),
        1 => adder_comparator(4),
        _ => priority_encoder(4),
    }
}

fn config(seed: u64, threads: usize, cache: bool) -> AlsConfig {
    AlsConfig::builder()
        .threshold(0.05)
        .patterns(PatternPolicy::Fixed(512))
        .seed(seed)
        .threads(threads)
        .cache(cache)
        .build()
        .expect("test config is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn engine_knobs_never_change_the_outcome(
        seed in 1u64..1000,
        circuit_index in 0usize..3,
        strategy_index in 0usize..2,
    ) {
        let net = circuit(circuit_index);
        let strategy = [Strategy::Single, Strategy::Multi][strategy_index];

        let baseline = approximate(&net, strategy, &config(seed, 1, true)).unwrap();
        let parallel = approximate(&net, strategy, &config(seed, 4, true)).unwrap();
        let uncached = approximate(&net, strategy, &config(seed, 1, false)).unwrap();

        let want = fingerprint(&baseline);
        prop_assert_eq!(
            &want,
            &fingerprint(&parallel),
            "threads=4 diverged from threads=1 (circuit {}, {:?}, seed {})",
            circuit_index, strategy, seed
        );
        prop_assert_eq!(
            &want,
            &fingerprint(&uncached),
            "cache=off diverged from cache=on (circuit {}, {:?}, seed {})",
            circuit_index, strategy, seed
        );
    }
}

/// The incremental dirty-set resimulation engine is a pure *speed* knob
/// too: `full_resim` (the `--full-resim` CLI escape hatch) degrades every
/// update to a full pass through the identical measurement arithmetic, so
/// outcomes must stay byte-identical across every circuit × Table-4
/// threshold × all three algorithms (quick pattern counts keep the sweep
/// fast). Non-vacuity is asserted on the resim work counters: the
/// incremental side must actually have saved node evaluations somewhere,
/// and the full side must never have.
#[test]
fn incremental_resimulation_never_changes_the_outcome() {
    let resim_config = |threshold: f64, full: bool| {
        AlsConfig::builder()
            .threshold(threshold)
            .patterns(PatternPolicy::Fixed(256))
            .seed(41)
            .resim(if full {
                ResimMode::Full
            } else {
                ResimMode::Incremental
            })
            .build()
            .expect("test config is valid")
    };
    let mut incremental_saved = 0u64;
    for circuit_index in 0..3 {
        let net = circuit(circuit_index);
        for &threshold in &PAPER_THRESHOLDS {
            for strategy in [Strategy::Single, Strategy::Multi, Strategy::Sasimi] {
                let inc = approximate(&net, strategy, &resim_config(threshold, false)).unwrap();
                let full = approximate(&net, strategy, &resim_config(threshold, true)).unwrap();
                assert_eq!(
                    fingerprint(&inc),
                    fingerprint(&full),
                    "{} @ {threshold} {strategy:?}: full_resim changed the outcome",
                    net.name()
                );
                assert!(
                    full.metrics.resim_nodes >= full.metrics.resim_full_equivalent,
                    "full_resim must not skip any node"
                );
                incremental_saved += inc
                    .metrics
                    .resim_full_equivalent
                    .saturating_sub(inc.metrics.resim_nodes);
            }
        }
    }
    assert!(
        incremental_saved > 0,
        "incremental resimulation never skipped a node — the sweep is vacuous"
    );
}

/// The one-solver-per-window-sweep SAT path is a pure *speed* knob as
/// well: [`SolverReuse::Incremental`] keeps a single solver warm across a
/// whole sweep (retracting each window's clause group afterwards) while
/// [`SolverReuse::Fresh`] builds a throwaway solver per query, and both
/// must answer every SDC/ODC query identically — so outcomes stay
/// byte-identical across every circuit × Table-4 threshold × all three
/// algorithms. Non-vacuity is asserted two ways: the incremental side must
/// somewhere have amortized (strictly fewer solver instances than queries,
/// and strictly fewer than the fresh oracle's one-solver-per-window total).
#[test]
fn incremental_solver_reuse_never_changes_the_outcome() {
    let reuse_config = |threshold: f64, reuse: SolverReuse| {
        AlsConfig::builder()
            .threshold(threshold)
            .patterns(PatternPolicy::Fixed(256))
            .seed(29)
            .dont_care(DontCareConfig {
                method: DontCareMethod::Sat,
                reuse,
                ..DontCareConfig::default()
            })
            .build()
            .expect("test config is valid")
    };
    let (mut inc_queries, mut inc_instances, mut fresh_instances) = (0u64, 0u64, 0u64);
    for circuit_index in 0..3 {
        let net = circuit(circuit_index);
        for &threshold in &PAPER_THRESHOLDS {
            for strategy in [Strategy::Single, Strategy::Multi, Strategy::Sasimi] {
                let inc = approximate(
                    &net,
                    strategy,
                    &reuse_config(threshold, SolverReuse::Incremental),
                )
                .unwrap();
                let fresh =
                    approximate(&net, strategy, &reuse_config(threshold, SolverReuse::Fresh))
                        .unwrap();
                assert_eq!(
                    fingerprint(&inc),
                    fingerprint(&fresh),
                    "{} @ {threshold} {strategy:?}: solver reuse changed the outcome",
                    net.name()
                );
                assert_eq!(
                    inc.metrics.sat_queries,
                    fresh.metrics.sat_queries,
                    "{} @ {threshold} {strategy:?}: reuse changed the query count",
                    net.name()
                );
                assert!(
                    inc.metrics.solver_instances <= fresh.metrics.solver_instances,
                    "{} @ {threshold} {strategy:?}: incremental path built more solvers \
                     than the fresh oracle",
                    net.name()
                );
                inc_queries += inc.metrics.sat_queries;
                inc_instances += inc.metrics.solver_instances;
                fresh_instances += fresh.metrics.solver_instances;
            }
        }
    }
    assert!(
        inc_instances < inc_queries,
        "incremental path never amortized a solver across queries \
         ({inc_instances} instances for {inc_queries} queries) — the sweep is vacuous"
    );
    assert!(
        inc_instances < fresh_instances,
        "incremental path built as many solvers as the fresh oracle \
         ({inc_instances} vs {fresh_instances}) — reuse never engaged"
    );
}

/// Adaptive pattern sampling is a pure *speed* knob as well: an early
/// reject fires only when the full-budget measurement would also reject,
/// and every other decision is made at the full budget through identical
/// arithmetic — so `Adaptive { min, max }` must produce byte-identical
/// outcomes to `Fixed(max)` across every circuit × Table-4 threshold × all
/// three algorithms. Non-vacuity is asserted on the
/// `adaptive_early_decisions` counter: somewhere in the sweep a trial must
/// actually have been rejected from a pattern prefix, or the equivalence
/// proves nothing.
#[test]
fn adaptive_sampling_never_changes_the_outcome() {
    let sampling_config = |threshold: f64, patterns: PatternPolicy| {
        AlsConfig::builder()
            .threshold(threshold)
            .patterns(patterns)
            .seed(23)
            .build()
            .expect("test config is valid")
    };
    let mut early_decisions = 0u64;
    let mut words_saved = 0u64;
    for circuit_index in 0..3 {
        let net = circuit(circuit_index);
        for &threshold in &PAPER_THRESHOLDS {
            for strategy in [Strategy::Single, Strategy::Multi, Strategy::Sasimi] {
                let adaptive = approximate(
                    &net,
                    strategy,
                    &sampling_config(threshold, PatternPolicy::Adaptive { min: 64, max: 256 }),
                )
                .unwrap();
                let fixed = approximate(
                    &net,
                    strategy,
                    &sampling_config(threshold, PatternPolicy::Fixed(256)),
                )
                .unwrap();
                assert_eq!(
                    fingerprint(&adaptive),
                    fingerprint(&fixed),
                    "{} @ {threshold} {strategy:?}: adaptive sampling changed the outcome",
                    net.name()
                );
                assert_eq!(
                    fixed.metrics.adaptive_early_decisions, 0,
                    "fixed sampling must never decide early"
                );
                early_decisions += adaptive.metrics.adaptive_early_decisions;
                words_saved += fixed
                    .metrics
                    .patterns_simulated_words
                    .saturating_sub(adaptive.metrics.patterns_simulated_words);
            }
        }
    }
    assert!(
        early_decisions > 0,
        "no trial was ever rejected from a pattern prefix — the sweep is vacuous"
    );
    assert!(
        words_saved > 0,
        "adaptive sampling simulated at least as many words as fixed sampling"
    );
}

/// `DelayWeight::Off` (the default) must be *byte-identical* to every
/// pre-delay-scoring release: under `Off` no `DelayScorer` is even built and
/// the legacy literals-per-error ranking runs untouched, so an explicit
/// `delay_weight(DelayWeight::Off)` must reproduce the plain default config
/// exactly — across every circuit × Table-4 threshold × both scored
/// algorithms (SASIMI's scoring is delay-unaware by design and rides along
/// as a control). A `Scaled` run, in contrast, may legitimately pick
/// different candidates but must still satisfy its threshold.
#[test]
fn delay_weight_off_is_byte_identical_to_the_default() {
    let weight_config = |threshold: f64, weight: Option<DelayWeight>| {
        let mut b = AlsConfig::builder()
            .threshold(threshold)
            .patterns(PatternPolicy::Fixed(256))
            .seed(17);
        if let Some(w) = weight {
            b = b.delay_weight(w);
        }
        b.build().expect("test config is valid")
    };
    for circuit_index in 0..3 {
        let net = circuit(circuit_index);
        for &threshold in &PAPER_THRESHOLDS {
            for strategy in [Strategy::Single, Strategy::Multi, Strategy::Sasimi] {
                let default = approximate(&net, strategy, &weight_config(threshold, None)).unwrap();
                let off = approximate(
                    &net,
                    strategy,
                    &weight_config(threshold, Some(DelayWeight::Off)),
                )
                .unwrap();
                assert_eq!(
                    fingerprint(&default),
                    fingerprint(&off),
                    "{} @ {threshold} {strategy:?}: DelayWeight::Off changed the outcome",
                    net.name()
                );
            }
        }
    }
    // A scaled weight is a different (legal) operating point: still sound,
    // not necessarily identical.
    let net = circuit(0);
    for strategy in [Strategy::Single, Strategy::Multi] {
        let scaled = approximate(
            &net,
            strategy,
            &weight_config(0.05, Some(DelayWeight::Scaled(2.0))),
        )
        .unwrap();
        assert!(
            scaled.measured_error_rate <= 0.05 + 1e-12,
            "{strategy:?}: delay-weighted run broke its threshold"
        );
        assert!(scaled.final_literals <= scaled.initial_literals);
    }
}

/// The same invariant, pinned on one explicit case per circuit so a failure
/// names the circuit directly (and so `--test determinism` exercises all
/// three even if the property's RNG happens not to).
#[test]
fn all_three_circuits_agree_across_engine_configs() {
    for circuit_index in 0..3 {
        let net = circuit(circuit_index);
        for strategy in [Strategy::Single, Strategy::Multi] {
            let baseline = approximate(&net, strategy, &config(7, 1, true)).unwrap();
            let parallel = approximate(&net, strategy, &config(7, 8, true)).unwrap();
            let uncached = approximate(&net, strategy, &config(7, 1, false)).unwrap();
            assert_eq!(
                fingerprint(&baseline),
                fingerprint(&parallel),
                "circuit {circuit_index} {strategy:?}: threads changed the outcome"
            );
            assert_eq!(
                fingerprint(&baseline),
                fingerprint(&uncached),
                "circuit {circuit_index} {strategy:?}: cache changed the outcome"
            );
        }
    }
}
