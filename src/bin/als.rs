//! `als` — command-line front end for the approximate-logic-synthesis flow.
//!
//! ```text
//! als stats       <in.blif>                       network statistics
//! als gen         <benchmark> [-o out.blif]       emit a generated benchmark
//! als approximate <in.blif> --threshold 0.05
//!                 [--algorithm single|multi|sasimi] [-o out.blif]
//!                 [--seed N] [--patterns fixed:N|adaptive:MIN..MAX]
//!                 [--resim incremental|full] [--threads N] [--no-cache]
//!                 [--no-dontcares] [--verbose] [--metrics]
//!                 [--events <log.jsonl>]
//! als sweep       <benchmark|in.blif> [--quick] [--thresholds a,b,..]
//!                 [--algorithms single,multi,sasimi] [--patterns spec,..]
//!                 [--delay-weight W] [--sweep-workers N] [--seed N]
//!                 [-o out.json | --out-dir DIR]   Pareto design-space sweep
//! als verify      <golden.blif> <approx.blif> [--patterns N] [--seed N]
//! als check       <in.blif> [--fast] [--json] [--certify <events.jsonl>]
//!                 [--golden <golden.blif>]        analyze + audit
//! als bound       <in.blif> [--golden <golden.blif>] [--json]
//!                                                 static probability/error intervals
//! als map         <in.blif>                       mapped area/delay/cells
//! als verilog     <in.blif> [-o out.v]            technology-map, emit Verilog
//! als cec         <a.blif> <b.blif>               SAT equivalence check
//! als simplify    <in.blif> [-o out.blif]         exact optimization
//! als serve       --listen ADDR [--workers N] [--queue N] [--cache N]
//!                 [--max-patterns N] [--max-iterations N]
//!                 [--events <log.jsonl>]          JSONL-over-TCP daemon
//! als list                                        available benchmarks
//! ```

use als::absint::{error_bounds, signal_probabilities, Policy};
use als::check::{
    audit_certificates, AnalyzerConfig, AuditConfig, CertificateLog, CheckEngine, NetworkAnalyzer,
};
use als::circuits::all_benchmarks;
use als::circuits::registry::find_benchmark;
use als::core::classical::optimize_classical;
use als::mapper::{map_network, write_verilog, Library};
use als::network::{blif, Network};
use als::prelude::*;
use als::sim::{error_rate, PatternSet};
use als::telemetry::Json;
use std::process::ExitCode;

/// Exit code for analyzer findings and `cec` disagreement.
const EXIT_FINDINGS: u8 = 1;
/// Exit code for usage errors and inputs that fail structural checks.
const EXIT_USAGE: u8 = 2;

/// A command failure with the exit code it should map to.
struct CliError {
    code: u8,
    message: String,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self {
            code: EXIT_FINDINGS,
            message,
        }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        Self::from(message.to_string())
    }
}

/// A bad invocation (missing arguments, unknown flags): exit code 2.
fn usage(message: impl Into<String>) -> CliError {
    CliError {
        code: EXIT_USAGE,
        message: message.into(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("approximate") => cmd_approximate(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("bound") => cmd_bound(&args[1..]),
        Some("map") => cmd_map(&args[1..]),
        Some("verilog") => cmd_verilog(&args[1..]),
        Some("cec") => cmd_cec(&args[1..]),
        Some("simplify") => cmd_simplify(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("list") => cmd_list(),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(usage(format!("unknown command `{other}`\n\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError { code, message }) => {
            eprintln!("error: {message}");
            ExitCode::from(code)
        }
    }
}

const USAGE: &str = "\
als — multi-level approximate logic synthesis under error rate constraint

USAGE:
  als stats       <in.blif>
  als gen         <benchmark> [-o out.blif]
  als approximate <in.blif> --threshold T [--algorithm single|multi|sasimi]
                  [-o out.blif] [--seed N] [--threads N]
                  [--patterns fixed:N|adaptive:MIN..MAX|N]
                              sampling policy: fixed budget, or adaptive
                              escalation from MIN toward the MAX budget
                  [--resim incremental|full]
                  [--no-cache] [--no-dontcares] [--verbose]
                  [--metrics]             print engine counters and timings
                  [--events <log.jsonl>]  stream telemetry events to a file
                  (deprecated aliases: --num-patterns N, --full-resim)
  als sweep       <benchmark|in.blif>          threshold × algorithm grid,
                  [--quick]                    Pareto frontier over
                  [--thresholds a,b,..]        (literals, delay, error rate)
                  [--algorithms single,multi,sasimi]
                  [--patterns spec[,spec..]] [--seed N]
                  [--delay-weight W]           delay-aware scoring (0 = off)
                  [--sweep-workers N]          grid-point parallelism (0 = all
                                               cores; results identical)
                  [--threads N] [--notes TEXT]
                  [-o out.json | --out-dir DIR]  (default: stdout)
  als verify      <golden.blif> <approx.blif> [--patterns N] [--seed N]
                  [--exact]   (BDD-based, no sampling)
  als check       <in.blif> [--fast]          structural + functional lint
                  [--json]                    machine-readable diagnostics
                  [--certify <events.jsonl>]  audit a run's certificates
                  [--golden <golden.blif>]    re-derive the real error rate
                  [--engine bdd|sat|auto]     exact-rate engine: BDD miter
                                              density, #SAT cube enumeration,
                                              or BDD with SAT fallback
                  (exit 0 clean, 1 findings, 2 usage)
  als bound       <in.blif>                   static signal-probability intervals
                  [--golden <golden.blif>]    sound per-output error-rate intervals
                  [--json]                    machine-readable output
  als map         <in.blif>
  als verilog     <in.blif> [-o out.v]     technology-map and emit Verilog
  als cec         <a.blif> <b.blif>        SAT equivalence check
  als simplify    <in.blif> [-o out.blif]  function-preserving optimization
  als serve       --listen ADDR            line-delimited-JSON synthesis daemon
                  [--workers N]            worker threads (default: all cores)
                  [--queue N]              admission-queue capacity (default 16)
                  [--cache N]              circuits kept in the artifact cache
                  [--max-patterns N] [--max-iterations N]   per-job budget caps
                  [--events <log.jsonl>]   job-admission + cache-traffic log
  als list
";

fn read_network(path: &str) -> Result<Network, CliError> {
    let net = read_network_unchecked(path)?;
    net.check().map_err(|e| format!("`{path}`: {e}"))?;
    Ok(net)
}

/// Parses without the consistency check — for commands that run the full
/// analyzer themselves and want diagnostics instead of a hard error.
fn read_network_unchecked(path: &str) -> Result<Network, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?;
    let net = blif::parse(&text).map_err(|e| format!("parsing `{path}`: {e}"))?;
    Ok(net)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses a `--patterns` policy: `fixed:N`, `adaptive:MIN..MAX`, or a bare
/// count `N` (shorthand for `fixed:N`, the pre-policy flag syntax).
fn parse_pattern_policy(spec: &str) -> Result<PatternPolicy, String> {
    if let Some(n) = spec.strip_prefix("fixed:") {
        let n = n.parse().map_err(|e| format!("fixed count: {e}"))?;
        return Ok(PatternPolicy::Fixed(n));
    }
    if let Some(range) = spec.strip_prefix("adaptive:") {
        let (min, max) = range
            .split_once("..")
            .ok_or_else(|| String::from("adaptive policy wants MIN..MAX"))?;
        let min = min.parse().map_err(|e| format!("adaptive MIN: {e}"))?;
        let max = max.parse().map_err(|e| format!("adaptive MAX: {e}"))?;
        return Ok(PatternPolicy::Adaptive { min, max });
    }
    spec.parse()
        .map(PatternPolicy::Fixed)
        .map_err(|e| format!("pattern count: {e}"))
}

fn write_or_print(net: &Network, args: &[String]) -> Result<(), CliError> {
    let text = blif::write(net);
    if let Some(path) = flag_value(args, "-o").or_else(|| flag_value(args, "--output")) {
        std::fs::write(path, text).map_err(|e| format!("writing `{path}`: {e}"))?;
        eprintln!("wrote {path}");
        Ok(())
    } else {
        print!("{text}");
        Ok(())
    }
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .ok_or_else(|| usage("stats needs a BLIF file"))?;
    let net = read_network(path)?;
    let s = net.stats();
    println!("model:    {}", net.name());
    println!("inputs:   {}", s.num_pis);
    println!("outputs:  {}", s.num_pos);
    println!("nodes:    {}", s.num_nodes);
    println!("literals: {}", s.literals);
    println!("depth:    {}", s.depth);
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    let name = args
        .first()
        .ok_or_else(|| usage("gen needs a benchmark name (see `als list`)"))?;
    let bench = find_benchmark(name)
        .ok_or_else(|| usage(format!("unknown benchmark `{name}` (see `als list`)")))?;
    let net = (bench.build)();
    write_or_print(&net, args)
}

// Infallible, but every subcommand returns `Result` so `main`'s dispatch
// stays uniform.
#[allow(clippy::unnecessary_wraps)]
fn cmd_list() -> Result<(), CliError> {
    println!("{:<8} {:<32} kind", "name", "function");
    for b in all_benchmarks() {
        println!(
            "{:<8} {:<32} {}",
            b.name,
            b.function,
            if b.stand_in { "stand-in" } else { "exact" }
        );
    }
    Ok(())
}

fn cmd_approximate(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .ok_or_else(|| usage("approximate needs a BLIF file"))?;
    let net = read_network_unchecked(path)?;
    // Refuse to optimize a structurally broken network: the synthesis
    // loops assume the invariants the fast passes verify, and would
    // otherwise panic (or worse, quietly mis-optimize) deep inside.
    let report = NetworkAnalyzer::new(AnalyzerConfig::fast()).analyze(&net);
    if !report.is_clean() {
        return Err(usage(format!(
            "`{path}` fails structural checks; refusing to approximate\n{report}"
        )));
    }
    let threshold: f64 = flag_value(args, "--threshold")
        .ok_or_else(|| usage("approximate needs --threshold (e.g. 0.05)"))?
        .parse()
        .map_err(|e| usage(format!("bad --threshold: {e}")))?;
    let mut builder = AlsConfig::builder().threshold(threshold);
    if let Some(seed) = flag_value(args, "--seed") {
        builder = builder.seed(
            seed.parse()
                .map_err(|e| usage(format!("bad --seed: {e}")))?,
        );
    }
    if let Some(patterns) = flag_value(args, "--patterns") {
        builder = builder.patterns(parse_pattern_policy(patterns).map_err(|e| {
            usage(format!(
                "bad --patterns: {e} (fixed:N, adaptive:MIN..MAX, or N)"
            ))
        })?);
    }
    if let Some(patterns) = flag_value(args, "--num-patterns") {
        eprintln!("warning: --num-patterns is deprecated; use --patterns fixed:N");
        builder = builder.patterns(PatternPolicy::Fixed(
            patterns
                .parse()
                .map_err(|e| usage(format!("bad --num-patterns: {e}")))?,
        ));
    }
    if let Some(mode) = flag_value(args, "--resim") {
        builder = builder.resim(match mode {
            "incremental" => ResimMode::Incremental,
            "full" => ResimMode::Full,
            other => {
                return Err(usage(format!(
                    "unknown --resim `{other}` (incremental or full)"
                )))
            }
        });
    }
    if let Some(threads) = flag_value(args, "--threads") {
        builder = builder.threads(
            threads
                .parse()
                .map_err(|e| usage(format!("bad --threads: {e}")))?,
        );
    }
    if args.iter().any(|a| a == "--no-cache") {
        builder = builder.cache(false);
    }
    if args.iter().any(|a| a == "--no-dontcares") {
        builder = builder.use_dont_cares(false);
    }
    if args.iter().any(|a| a == "--full-resim") {
        eprintln!("warning: --full-resim is deprecated; use --resim full");
        builder = builder.resim(ResimMode::Full);
    }
    if let Some(log_path) = flag_value(args, "--events") {
        let sink = als::telemetry::JsonlSink::create(log_path)
            .map_err(|e| format!("cannot open --events log `{log_path}`: {e}"))?;
        builder = builder.telemetry(std::sync::Arc::new(sink));
    }
    let config = builder.build().map_err(|e| CliError::from(e.to_string()))?;
    let strategy = match flag_value(args, "--algorithm").unwrap_or("multi") {
        "single" => Strategy::Single,
        "multi" => Strategy::Multi,
        "sasimi" => Strategy::Sasimi,
        other => return Err(usage(format!("unknown --algorithm `{other}`"))),
    };
    let outcome =
        approximate(&net, strategy, &config).map_err(|e| CliError::from(e.to_string()))?;
    eprintln!("{outcome}");
    if args.iter().any(|a| a == "--metrics") {
        let m = &outcome.metrics;
        eprintln!("metrics ({}, {} threads):", m.algorithm, m.threads);
        eprintln!(
            "  simulations:  {:>8}  ({} node-patterns simulated)",
            m.simulations, m.patterns_simulated
        );
        eprintln!(
            "  sim words:    {:>8}  (signature words written)",
            m.patterns_simulated_words
        );
        eprintln!("  measurements: {:>8}", m.measurements);
        if m.resim_updates > 0 {
            eprintln!(
                "  resim:        {:>8}  updates ({} nodes resimulated of {} full-equivalent, {} early exits)",
                m.resim_updates, m.resim_nodes, m.resim_full_equivalent, m.resim_skipped_early_exit
            );
        }
        if m.adaptive_early_decisions > 0 {
            eprintln!(
                "  adaptive:     {:>8}  early decisions from a pattern prefix",
                m.adaptive_early_decisions
            );
        }
        eprintln!(
            "  evaluations:  {:>8}  (cache hits {}, hit rate {:.1}%)",
            m.evaluations,
            m.cache_hits,
            m.cache_hit_rate() * 100.0
        );
        eprintln!(
            "  invalidations:{:>8}  ({} cache entries dropped)",
            m.invalidations, m.invalidated_entries
        );
        if m.knapsack_solves > 0 {
            eprintln!(
                "  knapsack:     {:>8}  solves ({} DP cells)",
                m.knapsack_solves, m.knapsack_dp_cells
            );
        }
        for (phase, secs) in m.phase_nanos.as_seconds() {
            if secs > 0.0 {
                eprintln!("  phase {phase:<10} {secs:.4}s");
            }
        }
    }
    if args.iter().any(|a| a == "--verbose") {
        for it in &outcome.iterations {
            for ch in &it.changes {
                eprintln!(
                    "  iter {:>3}: {:<16} → {:<24} (-{} lits, est {:.5})",
                    it.iteration, ch.node_name, ch.ase, ch.literals_saved, ch.error_estimate
                );
            }
        }
    }
    write_or_print(&outcome.network, args)
}

/// `als sweep`: run a threshold × algorithm × pattern-policy grid against
/// one circuit and emit the schema-versioned Pareto-frontier record
/// (`SWEEP_<circuit>.json`). Shared artifacts (golden mapping, absint
/// intervals, golden simulation per pattern budget) are computed once;
/// grid points run in parallel with byte-identical results for any
/// `--sweep-workers` setting.
fn cmd_sweep(args: &[String]) -> Result<(), CliError> {
    use als::core::sweep::{detect_git_sha, run_sweep, SweepGrid};

    let target = args
        .first()
        .filter(|a| !a.starts_with('-'))
        .ok_or_else(|| usage("sweep needs a benchmark name (see `als list`) or a BLIF file"))?;
    let (circuit, net) = if let Some(bench) = find_benchmark(target) {
        (bench.name.to_string(), (bench.build)())
    } else if std::path::Path::new(target).exists() {
        let net = read_network(target)?;
        (net.name().to_string(), net)
    } else {
        return Err(usage(format!(
            "`{target}` is neither a known benchmark (see `als list`) nor a readable BLIF file"
        )));
    };

    let quick = args.iter().any(|a| a == "--quick");
    let mut grid = if quick {
        SweepGrid::quick()
    } else {
        SweepGrid::full()
    };
    if let Some(spec) = flag_value(args, "--thresholds") {
        grid.thresholds = spec
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<f64>()
                    .map_err(|e| usage(format!("bad --thresholds entry `{t}`: {e}")))
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(spec) = flag_value(args, "--algorithms") {
        grid.strategies = spec
            .split(',')
            .map(|a| match a.trim() {
                "single" => Ok(Strategy::Single),
                "multi" => Ok(Strategy::Multi),
                "sasimi" => Ok(Strategy::Sasimi),
                other => Err(usage(format!(
                    "unknown --algorithms entry `{other}` (single, multi or sasimi)"
                ))),
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(spec) = flag_value(args, "--patterns") {
        grid.patterns = spec
            .split(',')
            .map(|p| {
                parse_pattern_policy(p.trim()).map_err(|e| {
                    usage(format!(
                        "bad --patterns entry `{p}`: {e} (fixed:N, adaptive:MIN..MAX, or N)"
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(w) = flag_value(args, "--delay-weight") {
        let w: f64 = w
            .parse()
            .map_err(|e| usage(format!("bad --delay-weight: {e}")))?;
        grid.delay_weight = if w == 0.0 {
            DelayWeight::Off
        } else {
            DelayWeight::Scaled(w)
        };
    }
    if let Some(n) = flag_value(args, "--sweep-workers") {
        grid.sweep_workers = n
            .parse()
            .map_err(|e| usage(format!("bad --sweep-workers: {e}")))?;
    }

    let mut config = AlsConfig::default();
    if let Some(seed) = flag_value(args, "--seed") {
        config.seed = seed
            .parse()
            .map_err(|e| usage(format!("bad --seed: {e}")))?;
    }
    if let Some(threads) = flag_value(args, "--threads") {
        config.threads = threads
            .parse()
            .map_err(|e| usage(format!("bad --threads: {e}")))?;
    }
    if quick {
        // Match the bench harness's --quick setup so sweep baselines and
        // BENCH baselines measure the same configuration.
        config.dont_care.method = als::dontcare::DontCareMethod::Enumerate;
    }

    let mut record =
        run_sweep(&circuit, &net, &grid, &config).map_err(|e| CliError::from(e.to_string()))?;
    record.git_sha = detect_git_sha();
    if let Some(notes) = flag_value(args, "--notes") {
        record.notes = notes.to_string();
    }

    let frontier = record.frontier().count();
    eprintln!(
        "sweep {}: {} grid points, {} on the Pareto frontier (golden {} lits, area {:.1}, delay {:.2})",
        record.circuit,
        record.points.len(),
        frontier,
        record.golden_literals,
        record.golden_area,
        record.golden_delay
    );

    let text = record.render();
    if let Some(path) = flag_value(args, "-o").or_else(|| flag_value(args, "--output")) {
        std::fs::write(path, &text).map_err(|e| format!("writing `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    } else if let Some(dir) = flag_value(args, "--out-dir") {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating `{dir}`: {e}"))?;
        let path = std::path::Path::new(dir).join(record.file_name());
        std::fs::write(&path, &text).map_err(|e| format!("writing `{}`: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    } else {
        print!("{text}");
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), CliError> {
    let path = args
        .iter()
        .enumerate()
        .find(|&(i, a)| {
            !a.starts_with('-')
                && (i == 0
                    || !matches!(args[i - 1].as_str(), "--certify" | "--golden" | "--engine"))
        })
        .map(|(_, a)| a)
        .ok_or_else(|| usage("check needs a BLIF file"))?;
    let net = read_network_unchecked(path)?;
    let engine = match flag_value(args, "--engine") {
        None | Some("bdd") => CheckEngine::Bdd,
        Some("sat") => CheckEngine::Sat,
        Some("auto") => CheckEngine::Auto,
        Some(other) => {
            return Err(usage(format!(
                "unknown --engine `{other}` (expected bdd, sat, or auto)"
            )))
        }
    };
    let config = if args.iter().any(|a| a == "--fast") {
        AnalyzerConfig::fast()
    } else {
        AnalyzerConfig::full()
    };
    let mut report = NetworkAnalyzer::new(config).analyze(&net);

    if let Some(log_path) = flag_value(args, "--certify") {
        let text = std::fs::read_to_string(log_path)
            .map_err(|e| format!("reading --certify log `{log_path}`: {e}"))?;
        match CertificateLog::from_jsonl(&text) {
            Ok(log) => {
                let golden = flag_value(args, "--golden").map(read_network).transpose()?;
                // The network being checked is the run's final network;
                // with --golden the audit re-derives its real error rate
                // on the selected exact engine.
                let config = AuditConfig {
                    engine,
                    ..AuditConfig::default()
                };
                let audit = audit_certificates(&log, golden.as_ref(), Some(&net), &config);
                report.extend(audit);
            }
            Err(e) => {
                report.push(als::check::Diagnostic::error("certificates", e.to_string()));
            }
        }
    } else if flag_value(args, "--golden").is_some() {
        return Err(usage("--golden only makes sense together with --certify"));
    } else if flag_value(args, "--engine").is_some() {
        return Err(usage("--engine only makes sense together with --certify"));
    }

    // Repeated passes (or an analyze + audit combination) can derive the
    // same finding twice; report each distinct fact once.
    report.dedupe();

    if args.iter().any(|a| a == "--json") {
        print!("{}", report_to_json(&report).render_pretty());
    } else {
        print!("{report}");
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(CliError {
            code: EXIT_FINDINGS,
            message: format!("`{path}`: {} error(s) found", report.error_count()),
        })
    }
}

/// Serializes an analysis report with the workspace's own JSON type (the
/// same one backing the telemetry event log — no external dependency).
fn report_to_json(report: &als::check::AnalysisReport) -> Json {
    let diagnostics: Vec<Json> = report
        .diagnostics
        .iter()
        .map(|d| {
            let mut obj = Json::object();
            obj.set("severity", d.severity.to_string())
                .set("pass", d.pass)
                .set("message", d.message.as_str());
            if let Some(node) = d.node {
                obj.set("node", node.index());
            }
            if let Some(name) = &d.node_name {
                obj.set("node_name", name.as_str());
            }
            if let Some(hint) = &d.hint {
                obj.set("hint", hint.as_str());
            }
            obj
        })
        .collect();
    let mut out = Json::object();
    out.set("clean", report.is_clean())
        .set("errors", report.error_count())
        .set("findings", report.diagnostics.len())
        .set("diagnostics", diagnostics);
    out
}

/// `als bound`: print the abstract interpreter's static intervals. Without
/// `--golden` these are per-output signal-probability intervals under the
/// paper's independent-uniform input model; with `--golden` they are sound
/// per-output (and combined) error-rate intervals of the network against
/// the golden function.
fn cmd_bound(args: &[String]) -> Result<(), CliError> {
    let path = args
        .iter()
        .enumerate()
        .find(|&(i, a)| {
            !a.starts_with('-') && (i == 0 || !matches!(args[i - 1].as_str(), "--golden"))
        })
        .map(|(_, a)| a)
        .ok_or_else(|| usage("bound needs a BLIF file"))?;
    let net = read_network(path)?;
    let json = args.iter().any(|a| a == "--json");

    if let Some(golden_path) = flag_value(args, "--golden") {
        let golden = read_network(golden_path)?;
        let bounds = error_bounds(&golden, &net, Policy::Exact)
            .map_err(|e| CliError::from(e.to_string()))?;
        if json {
            let outputs: Vec<Json> = bounds
                .per_output
                .iter()
                .map(|o| {
                    let mut obj = Json::object();
                    obj.set("output", o.name.as_str())
                        .set("lo", o.interval.lo)
                        .set("hi", o.interval.hi);
                    obj
                })
                .collect();
            let mut out = Json::object();
            out.set("model", net.name())
                .set("golden", golden.name())
                .set("combined_lo", bounds.combined.lo)
                .set("combined_hi", bounds.combined.hi)
                .set("outputs", outputs);
            print!("{}", out.render_pretty());
        } else {
            println!("error-rate intervals vs `{golden_path}` (sound, any input distribution):");
            for o in &bounds.per_output {
                println!("  {:<24} {}", o.name, o.interval);
            }
            println!("  {:<24} {}", "any-output (combined)", bounds.combined);
        }
        return Ok(());
    }

    let probs = signal_probabilities(&net, Policy::Exact);
    if json {
        let outputs: Vec<Json> = net
            .pos()
            .iter()
            .map(|(name, driver)| {
                let i = probs.interval(*driver);
                let mut obj = Json::object();
                obj.set("output", name.as_str())
                    .set("lo", i.lo)
                    .set("hi", i.hi);
                obj
            })
            .collect();
        let mut out = Json::object();
        out.set("model", net.name())
            .set("frechet_forced_nodes", probs.frechet_count())
            .set("outputs", outputs);
        print!("{}", out.render_pretty());
    } else {
        println!(
            "signal-probability intervals (independent uniform inputs, \
             {} node(s) under reconvergent fanout use worst-case bounds):",
            probs.frechet_count()
        );
        for (name, driver) in net.pos() {
            println!("  {:<24} {}", name, probs.interval(*driver));
        }
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), CliError> {
    let golden_path = args
        .first()
        .ok_or_else(|| usage("verify needs <golden.blif> <approx.blif>"))?;
    let approx_path = args
        .get(1)
        .ok_or_else(|| usage("verify needs <golden.blif> <approx.blif>"))?;
    let golden = read_network(golden_path)?;
    let approx = read_network(approx_path)?;
    if golden.num_pis() != approx.num_pis() || golden.num_pos() != approx.num_pos() {
        return Err(CliError::from(format!(
            "interface mismatch: {}/{} vs {}/{} PIs/POs",
            golden.num_pis(),
            golden.num_pos(),
            approx.num_pis(),
            approx.num_pos()
        )));
    }
    let num_patterns: usize = flag_value(args, "--patterns")
        .map(str::parse)
        .transpose()
        .map_err(|e| usage(format!("bad --patterns: {e}")))?
        .unwrap_or(als::sim::DEFAULT_NUM_PATTERNS);
    let seed: u64 = flag_value(args, "--seed")
        .map(str::parse)
        .transpose()
        .map_err(|e| usage(format!("bad --seed: {e}")))?
        .unwrap_or(1);
    if args.iter().any(|a| a == "--exact") {
        match als::bdd::exact_error_rate(&golden, &approx, 1 << 22) {
            Ok(er) => {
                println!("exact error rate: {er:.9} (BDD miter)");
                return Ok(());
            }
            Err(e) => eprintln!("exact verification unavailable ({e}); falling back to sampling"),
        }
    }
    let patterns = PatternSet::random(golden.num_pis(), num_patterns, seed);
    let er = error_rate(&golden, &approx, &patterns);
    println!(
        "error rate: {er:.6} ({} patterns, seed {seed})",
        patterns.num_patterns()
    );
    Ok(())
}

fn cmd_verilog(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .ok_or_else(|| usage("verilog needs a BLIF file"))?;
    let net = read_network(path)?;
    let lib = Library::mcnc_like();
    let mapped = map_network(&net, &lib);
    let text = write_verilog(&net, &mapped);
    match flag_value(args, "-o").or_else(|| flag_value(args, "--output")) {
        Some(out) => {
            std::fs::write(out, text).map_err(|e| format!("writing `{out}`: {e}"))?;
            eprintln!("wrote {out} ({} gates)", mapped.num_gates());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_cec(args: &[String]) -> Result<(), CliError> {
    let a_path = args
        .first()
        .ok_or_else(|| usage("cec needs <a.blif> <b.blif>"))?;
    let b_path = args
        .get(1)
        .ok_or_else(|| usage("cec needs <a.blif> <b.blif>"))?;
    let a = read_network(a_path)?;
    let b = read_network(b_path)?;
    let result = als::aig::cec(&a, &b);
    println!("{result}");
    match result {
        als::aig::CecResult::Equivalent => Ok(()),
        _ => Err("networks differ".into()),
    }
}

fn cmd_simplify(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .ok_or_else(|| usage("simplify needs a BLIF file"))?;
    let mut net = read_network(path)?;
    let before = net.literal_count();
    let config = AlsConfig::default();
    let saved = optimize_classical(&mut net, &config);
    eprintln!(
        "simplified: {before} → {} literals ({saved} saved, function preserved)",
        net.literal_count()
    );
    write_or_print(&net, args)
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let addr = flag_value(args, "--listen").ok_or_else(|| usage("serve needs --listen ADDR"))?;
    let mut config = als::serve::ServeConfig::new(addr);
    let parse_count = |name: &str, current: usize| -> Result<usize, CliError> {
        match flag_value(args, name) {
            Some(v) => v.parse().map_err(|e| usage(format!("{name}: {e}"))),
            None => Ok(current),
        }
    };
    config.workers = parse_count("--workers", config.workers)?;
    config.queue_capacity = parse_count("--queue", config.queue_capacity)?;
    config.cache_capacity = parse_count("--cache", config.cache_capacity)?;
    config.max_patterns = parse_count("--max-patterns", config.max_patterns)?;
    config.max_iterations = parse_count("--max-iterations", config.max_iterations)?;
    let telemetry = match flag_value(args, "--events") {
        Some(log_path) => {
            let sink = als::telemetry::JsonlSink::create(log_path)
                .map_err(|e| format!("cannot open --events log `{log_path}`: {e}"))?;
            als::telemetry::Telemetry::new(std::sync::Arc::new(sink))
        }
        None => als::telemetry::Telemetry::disabled(),
    };
    let server = als::serve::Server::bind(&config, telemetry)
        .map_err(|e| format!("cannot listen on `{}`: {e}", config.addr))?;
    eprintln!(
        "als serve: listening on {} ({} workers, queue {}, cache {} circuits)",
        server.local_addr(),
        server.num_workers(),
        config.queue_capacity,
        config.cache_capacity
    );
    server
        .run()
        .map_err(|e| CliError::from(format!("serve: {e}")))
}

fn cmd_map(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| usage("map needs a BLIF file"))?;
    let net = read_network(path)?;
    let lib = Library::mcnc_like();
    let mapped = map_network(&net, &lib);
    println!("area:  {:.1}", mapped.area());
    println!("delay: {:.2}", mapped.delay());
    println!("gates: {}", mapped.num_gates());
    let mut hist: Vec<_> = mapped.cell_histogram().into_iter().collect();
    hist.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    for (cell, count) in hist {
        println!("  {cell:<8} {count}");
    }
    Ok(())
}
