//! `als` — multi-level approximate logic synthesis under error rate
//! constraint.
//!
//! A from-scratch Rust reproduction of Wu & Qian, *"An Efficient Method for
//! Multi-level Approximate Logic Synthesis under Error Rate Constraint"*
//! (DAC 2016), together with every substrate the paper's flow relies on.
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`logic`] | cubes, SOP covers, truth tables, ISOP minimization, factored forms, algebraic factoring |
//! | [`network`] | MIS/SIS-style multi-level Boolean networks, BLIF I/O |
//! | [`sim`] | bit-parallel simulation, error-rate measurement, local-pattern statistics |
//! | [`sat`] | a CDCL SAT solver (used for don't-care computation) |
//! | [`dontcare`] | windowed SDC/ODC classification (enumeration and SAT engines) |
//! | [`core`] | **the paper's contribution**: ASEs, both selection algorithms, the multi-state knapsack |
//! | [`mod@sasimi`] | the SASIMI baseline (substitute-and-simplify) |
//! | [`circuits`] | the Table 3 benchmark generators |
//! | [`mapper`] | technology mapping onto an MCNC-like cell library |
//! | [`bdd`] | ROBDDs for exact (non-sampled) error-rate verification |
//! | [`aig`] | and-inverter graphs; SAT-based equivalence checking |
//! | [`absint`] | abstract-interpretation error bounds: probability/error intervals, static candidate pruning |
//! | [`serve`] | the `als serve` daemon: JSONL-over-TCP synthesis jobs with a cross-job artifact cache |
//!
//! # Quickstart
//!
//! The entry point is [`approximate`]: pick a [`Strategy`], build an
//! [`AlsConfig`] with the builder, and get an [`AlsOutcome`] (or a
//! non-panicking [`AlsError`] for invalid inputs).
//!
//! ```
//! use als::circuits::adders::ripple_carry_adder;
//! use als::{approximate, AlsConfig, Strategy};
//!
//! // Approximate an 8-bit ripple-carry adder with a 5% error-rate budget,
//! // evaluating candidates on two threads.
//! let golden = ripple_carry_adder(8);
//! let config = AlsConfig::builder().threshold(0.05).threads(2).build()?;
//! let outcome = approximate(&golden, Strategy::Multi, &config)?;
//! assert!(outcome.measured_error_rate <= 0.05);
//! assert!(outcome.final_literals <= outcome.initial_literals);
//! println!("{outcome}");
//! # Ok::<(), als::AlsError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub use als_absint as absint;
pub use als_aig as aig;
pub use als_bdd as bdd;
pub use als_check as check;
pub use als_circuits as circuits;
pub use als_core as core;
pub use als_dontcare as dontcare;
pub use als_logic as logic;
pub use als_mapper as mapper;
pub use als_network as network;
pub use als_sasimi as sasimi;
pub use als_sat as sat;
pub use als_serve as serve;
pub use als_sim as sim;
pub use als_telemetry as telemetry;

// Convenience re-exports of the items used in almost every program.
pub use als_core::{
    approximate, multi_selection, single_selection, AlsConfig, AlsError, AlsOutcome, DelayWeight,
    MagnitudeConstraint, MetricsReport, PatternPolicy, PrunePolicy, ResimMode, Strategy,
};
pub use als_network::Network;
pub use als_sasimi::sasimi;

/// The convenience import surface: everything a typical caller needs to run
/// a synthesis and inspect the outcome.
///
/// ```
/// use als::prelude::*;
///
/// let config = AlsConfig::builder()
///     .threshold(0.05)
///     .patterns(PatternPolicy::Adaptive { min: 1024, max: 10_048 })
///     .build()?;
/// # let _ = (config, Strategy::Single);
/// # Ok::<(), als::AlsError>(())
/// ```
pub mod prelude {
    pub use als_core::prelude::*;
}
