//! The paper's future-work extension (§7) in action: approximate an adder
//! under **both** an error-rate budget and an error-*magnitude* bound.
//!
//! With only the rate constraint, the synthesizer happily flips
//! high-significance outputs (a wrong answer is a wrong answer). Adding a
//! magnitude bound steers the approximation toward the low-order bits, the
//! behaviour hand-designed approximate adders aim for.
//!
//! Run with: `cargo run --release --example magnitude_constrained`

use als::circuits::ripple_carry_adder;
use als::core::{multi_selection, AlsConfig, MagnitudeConstraint, PatternPolicy};
use als::sim::{magnitude_stats, PatternSet};

fn main() {
    let golden = ripple_carry_adder(6);
    let patterns = PatternSet::exhaustive(12).expect("12 PIs are enumerable");

    println!(
        "{:>12} {:>10} {:>10} {:>12} {:>12}",
        "max |err|", "literals", "meas. ER", "true max", "true mean"
    );
    for bound in [None, Some(16), Some(4), Some(1)] {
        let mut config = AlsConfig::with_threshold(0.25);
        config.patterns = PatternPolicy::Fixed(4096);
        config.magnitude = bound.map(|max_abs| MagnitudeConstraint { max_abs });
        let outcome = multi_selection(&golden, &config);
        let stats = magnitude_stats(&golden, &outcome.network, &patterns);
        println!(
            "{:>12} {:>10} {:>10.4} {:>12} {:>12.4}",
            bound.map_or("∞".to_string(), |b| b.to_string()),
            outcome.final_literals,
            outcome.measured_error_rate,
            stats.max_abs,
            stats.mean_abs,
        );
        if let Some(b) = bound {
            assert!(
                stats.max_abs <= b + 1,
                "sampled bound must generalize closely"
            );
        }
    }
    println!("\ntighter magnitude bounds keep more literals but confine errors");
    println!("to the low-order sum bits.");
}
