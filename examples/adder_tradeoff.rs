//! Error-rate vs. area trade-off across the three 32-bit adder
//! architectures of the paper (RCA32, CLA32, KSA32).
//!
//! The paper's motivating workloads tolerate a bounded fraction of wrong
//! outputs; this example shows how much mapped area each adder architecture
//! gives back as the tolerated error rate grows — prefix-tree adders
//! (Kogge–Stone) have the most redundancy to harvest, textbook ripple-carry
//! adders the least.
//!
//! Run with: `cargo run --release --example adder_tradeoff`

use als::circuits::{carry_lookahead_adder, kogge_stone_adder, ripple_carry_adder};
use als::core::{multi_selection, AlsConfig, PatternPolicy};
use als::mapper::{map_network, Library};

fn main() {
    let thresholds = [0.001, 0.01, 0.05];
    let adders = [
        ("RCA32", ripple_carry_adder(32)),
        ("CLA32", carry_lookahead_adder(32)),
        ("KSA32", kogge_stone_adder(32)),
    ];
    let lib = Library::mcnc_like();

    println!(
        "{:<7} {:>10} {:>12} {:>12} {:>12}",
        "adder", "base area", "ER ≤ 0.1%", "ER ≤ 1%", "ER ≤ 5%"
    );
    for (name, golden) in &adders {
        let base = map_network(golden, &lib).area();
        print!("{name:<7} {base:>10.0}");
        for &t in &thresholds {
            let mut config = AlsConfig::with_threshold(t);
            config.patterns = PatternPolicy::Fixed(4096);
            let outcome = multi_selection(golden, &config);
            let area = map_network(&outcome.network, &lib).area();
            print!("{:>11.1}%", (1.0 - area / base) * 100.0);
            assert!(outcome.measured_error_rate <= t + 1e-12);
        }
        println!();
    }
    println!("\n(values are mapped-area savings on the MCNC-like library)");
}
