//! Application-level quality of an approximate multiplier.
//!
//! The paper constrains the **error rate** (how often any output bit is
//! wrong) — the metric of §1 — and leaves error *magnitude* to future work.
//! This example shows what that means for a downstream user: it approximates
//! the 8-bit array multiplier at several error-rate budgets and reports both
//! the error rate and the numerical deviation the resulting circuit exhibits
//! on random workloads (mean relative error of the product).
//!
//! Run with: `cargo run --release --example multiplier_quality`

use als::circuits::array_multiplier;
use als::core::{single_selection, AlsConfig, PatternPolicy};
use als::network::Network;

/// Multiplies through a network: drives the first 16 PIs with `a` and `b`,
/// reads the 16 product bits.
fn product(net: &Network, a: u8, b: u8) -> u32 {
    let mut pis = Vec::with_capacity(16);
    for i in 0..8 {
        pis.push(a >> i & 1 == 1);
    }
    for i in 0..8 {
        pis.push(b >> i & 1 == 1);
    }
    net.eval(&pis)
        .iter()
        .enumerate()
        .fold(0u32, |acc, (i, &v)| acc | (u32::from(v) << i))
}

fn main() {
    let golden = array_multiplier(8);
    println!(
        "{:>9} {:>12} {:>12} {:>14} {:>14}",
        "budget", "literals", "meas. ER", "wrong prods", "mean rel err"
    );
    for threshold in [0.001, 0.01, 0.05, 0.10] {
        let mut config = AlsConfig::with_threshold(threshold);
        config.patterns = PatternPolicy::Fixed(4096);
        let outcome = single_selection(&golden, &config);

        // Exhaustive application-level evaluation: all 65 536 products.
        let mut wrong = 0u32;
        let mut rel_err_sum = 0.0f64;
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let exact = u32::from(a) * u32::from(b);
                let approx = product(&outcome.network, a, b);
                if approx != exact {
                    wrong += 1;
                    if exact != 0 {
                        rel_err_sum +=
                            (f64::from(approx) - f64::from(exact)).abs() / f64::from(exact);
                    }
                }
            }
        }
        let total = 65_536.0;
        println!(
            "{:>8.1}% {:>12} {:>12.4} {:>13.2}% {:>14.5}",
            threshold * 100.0,
            outcome.final_literals,
            outcome.measured_error_rate,
            f64::from(wrong) / total * 100.0,
            rel_err_sum / total,
        );
        assert!(
            f64::from(wrong) / total <= threshold + 0.02,
            "true error rate must track the sampled one"
        );
    }
    println!("\nthe error *rate* is bounded by construction; the error *magnitude*");
    println!("is whatever the removed literals imply — the paper's future-work");
    println!("extension would constrain both.");
}
