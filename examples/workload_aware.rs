//! Workload-aware approximation: the error *rate* depends on the input
//! distribution, and the synthesis budget should be spent where the
//! application actually lives.
//!
//! The paper assumes uniform inputs (§6). Real error-tolerant applications
//! rarely are: here an 8-bit adder is used as an accumulator whose second
//! operand is a small delta (0..16). Under that workload the high half of
//! operand `b` is always zero, so a workload-aware run
//! ([`single_selection_under`]) can strip logic a uniform run must keep —
//! at the price that the result is only valid *for that workload*, which
//! the example quantifies.
//!
//! Run with: `cargo run --release --example workload_aware`

use als::circuits::ripple_carry_adder;
use als::core::{single_selection, single_selection_under, AlsConfig};
use als::sim::{error_rate, PatternSet};

/// The accumulator workload: operand `a` uniform, operand `b` in 0..16.
fn accumulator_vectors(count: usize, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let a = state & 0xFF;
            let b = (state >> 32) & 0x0F; // small deltas only
            a | (b << 8)
        })
        .collect()
}

fn main() {
    let golden = ripple_carry_adder(8);
    let budget = 0.05;
    let config = AlsConfig::with_threshold(budget);

    let workload = || PatternSet::from_vectors(16, &accumulator_vectors(10_048, 7));
    let uniform_patterns = PatternSet::random(16, 10_048, 99);

    // Uniform synthesis (the paper's setting).
    let uniform_run = single_selection(&golden, &config);
    // Workload-aware synthesis: the budget is measured under the workload.
    let workload_run = single_selection_under(&golden, &config, workload());

    println!(
        "8-bit adder, 5% error-rate budget ({} literals golden):",
        golden.literal_count()
    );
    println!(
        "{:<22} {:>9} {:>16} {:>16}",
        "synthesis stimulus", "literals", "ER (uniform)", "ER (workload)"
    );
    for (label, outcome) in [("uniform", &uniform_run), ("accumulator", &workload_run)] {
        let er_u = error_rate(&golden, &outcome.network, &uniform_patterns);
        let er_w = error_rate(&golden, &outcome.network, &workload());
        println!(
            "{label:<22} {:>9} {er_u:>16.4} {er_w:>16.4}",
            outcome.final_literals
        );
    }
    println!();
    println!("the workload-aware run shrinks further (the never-exercised high");
    println!("bits of operand b are free to delete) and stays inside the budget");
    println!("under its own workload — but its uniform-input error rate shows why");
    println!("such a circuit must only ever see the workload it was built for.");

    assert!(workload_run.final_literals <= uniform_run.final_literals);
    assert!(workload_run.measured_error_rate <= budget + 1e-12);
}
