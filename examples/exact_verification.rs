//! Verifying an approximate circuit *exactly* — beyond the paper.
//!
//! The paper validates error rates with 10 000 random vectors. For circuits
//! whose BDDs stay small, this repo can do better: the BDD miter gives the
//! **exact** error rate over all `2^n` inputs, and the SAT-based CEC gives a
//! yes/no equivalence certificate with a counterexample. This example
//! approximates a 16-bit Kogge–Stone adder and compares the sampled estimate
//! with the exact rate.
//!
//! Run with: `cargo run --release --example exact_verification`

use als::aig::{cec, CecResult};
use als::bdd::exact_error_rate;
use als::circuits::kogge_stone_adder;
use als::core::{multi_selection, AlsConfig};

fn main() {
    let golden = kogge_stone_adder(16); // 32 PIs: 4 billion input vectors
    println!(
        "golden KSA16: {} nodes, {} literals, 2^{} input vectors",
        golden.num_internal(),
        golden.literal_count(),
        golden.num_pis()
    );

    println!(
        "\n{:>9} {:>10} {:>12} {:>12} {:>10}",
        "budget", "literals", "sampled ER", "exact ER", "CEC"
    );
    for threshold in [0.0, 0.01, 0.05] {
        let config = AlsConfig::with_threshold(threshold);
        let outcome = multi_selection(&golden, &config);
        let exact = exact_error_rate(&golden, &outcome.network, 1 << 22)
            .expect("adder BDDs stay small under the structural order");
        let equivalence = match cec(&golden, &outcome.network) {
            CecResult::Equivalent => "equal",
            CecResult::Counterexample(_) => "differs",
            CecResult::InterfaceMismatch => unreachable!("same interface"),
        };
        println!(
            "{:>8.1}% {:>10} {:>12.5} {:>12.8} {:>10}",
            threshold * 100.0,
            outcome.final_literals,
            outcome.measured_error_rate,
            exact,
            equivalence,
        );
        // The exact rate must respect the budget up to sampling noise of the
        // synthesis-time estimate (the 10 048-vector run).
        assert!(
            exact <= threshold + 0.01,
            "exact {exact} vs budget {threshold}"
        );
        if threshold == 0.0 {
            assert_eq!(exact, 0.0);
            assert_eq!(equivalence, "equal");
        }
    }
    println!("\nat a 0% budget the result is *provably* equivalent (UNSAT miter);");
    println!("at positive budgets the exact rate quantifies the sampling gap.");
}
