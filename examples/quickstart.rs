//! Quickstart: approximate a small hand-written circuit with both
//! algorithms and inspect the results.
//!
//! Run with: `cargo run --release --example quickstart`

use als::core::{multi_selection, single_selection, AlsConfig};
use als::network::blif;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy network in BLIF: two outputs, one of which depends on a
    // rarely-true product term — a cheap approximation target.
    let golden = blif::parse(
        "\
.model toy
.inputs x0 x1 x2 x3 x4 x5
.outputs y z
.names x0 x1 x2 x3 g
1111 1
.names x4 x5 h
1- 1
-1 1
.names g h y
1- 1
-1 1
.names x4 x5 z
11 1
.end
",
    )?;
    println!(
        "golden: {} nodes, {} literals",
        golden.num_internal(),
        golden.literal_count()
    );

    // A 5% error-rate budget.
    let config = AlsConfig::with_threshold(0.05);

    let single = single_selection(&golden, &config);
    println!("\nsingle-selection: {single}");
    for it in &single.iterations {
        for ch in &it.changes {
            println!(
                "  iter {}: {} → `{}` (saves {} literals, est. error {:.4})",
                it.iteration, ch.node_name, ch.ase, ch.literals_saved, ch.error_estimate
            );
        }
    }

    let multi = multi_selection(&golden, &config);
    println!("\nmulti-selection:  {multi}");

    // The approximate networks still satisfy the budget — and can be
    // exported back to BLIF for downstream tools.
    println!("\napproximate BLIF:\n{}", blif::write(&single.network));
    Ok(())
}
