//! A complete BLIF-in / BLIF-out flow, the way an EDA user would script it:
//! read a netlist, remove redundancy, approximate under a budget, verify by
//! independent simulation, technology-map, and export.
//!
//! Run with: `cargo run --release --example blif_flow [path/to/circuit.blif]`
//! (without an argument it uses the paper's Fig. 1 network).

use als::core::{multi_selection, AlsConfig};
use als::mapper::{map_network, Library};
use als::network::blif;
use als::sim::{error_rate, PatternSet};

/// The paper's Fig. 1: n1 = i1·i2, n2 = n1·i3, f = i0·n2 + i0'·n1.
const FIG1: &str = "\
.model fig1
.inputs i0 i1 i2 i3
.outputs f
.names i1 i2 n1
11 1
.names n1 i3 n2
11 1
.names i0 n2 n1 f
11- 1
0-1 1
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => FIG1.to_string(),
    };
    let golden = blif::parse(&text)?;
    golden.check()?;
    println!(
        "read `{}`: {} PIs, {} POs, {} nodes, {} literals",
        golden.name(),
        golden.num_pis(),
        golden.num_pos(),
        golden.num_internal(),
        golden.literal_count()
    );

    let config = AlsConfig::with_threshold(0.05);
    let outcome = multi_selection(&golden, &config);
    println!("approximated: {outcome}");

    // Independent verification on a fresh pattern set (different seed than
    // the synthesis run used).
    let patterns = PatternSet::random(golden.num_pis(), 1 << 14, 0xFE11);
    let verified = error_rate(&golden, &outcome.network, &patterns);
    println!("independent error-rate check: {verified:.4} (budget 0.05)");

    let lib = Library::mcnc_like();
    let before = map_network(&golden, &lib);
    let after = map_network(&outcome.network, &lib);
    println!(
        "mapped: area {:.0} → {:.0}, delay {:.1} → {:.1}",
        before.area(),
        after.area(),
        before.delay(),
        after.delay()
    );

    println!("\n{}", blif::write(&outcome.network));
    Ok(())
}
